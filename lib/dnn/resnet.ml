(* ResNet layer tables (He et al., CVPR'16), 224x224 inputs.

   The max-pool after the stem uses a 2x2/2 window (our pool operators are
   unpadded), which preserves the 112 -> 56 feature-map reduction of the
   original 3x3/2 padded pool. *)

let conv name ?(count = 1) ~batch ~ci ~co ~size ~k ~s ~p () =
  Model.layer ~count name
    (Ops.Conv.conv2d ~batch ~in_channels:ci ~out_channels:co ~height:size
       ~width:size ~kernel:k ~stride:s ~pad:p ())

let eltwise name ?(count = 1) ~shape () =
  Model.layer ~count name (Ops.Elementwise.relu ~shape ())

(* One bottleneck stage: the first block downsamples and widens; the
   remaining [blocks - 1] share identical shapes and are counted once. *)
let bottleneck_stage ~batch ~stage ~in_c ~mid ~out_c ~in_size ~stride ~blocks =
  let out_size = in_size / stride in
  let tag fmt = Fmt.str fmt stage in
  let first =
    [ conv (tag "s%d.b1.reduce") ~batch ~ci:in_c ~co:mid ~size:in_size ~k:1
        ~s:1 ~p:0 ();
      conv (tag "s%d.b1.conv3x3") ~batch ~ci:mid ~co:mid ~size:in_size ~k:3
        ~s:stride ~p:1 ();
      conv (tag "s%d.b1.expand") ~batch ~ci:mid ~co:out_c ~size:out_size ~k:1
        ~s:1 ~p:0 ();
      conv (tag "s%d.b1.downsample") ~batch ~ci:in_c ~co:out_c ~size:in_size
        ~k:1 ~s:stride ~p:0 () ]
  in
  let rest =
    if blocks <= 1 then []
    else
      [ conv (tag "s%d.bn.reduce") ~count:(blocks - 1) ~batch ~ci:out_c ~co:mid
          ~size:out_size ~k:1 ~s:1 ~p:0 ();
        conv (tag "s%d.bn.conv3x3") ~count:(blocks - 1) ~batch ~ci:mid ~co:mid
          ~size:out_size ~k:3 ~s:1 ~p:1 ();
        conv (tag "s%d.bn.expand") ~count:(blocks - 1) ~batch ~ci:mid ~co:out_c
          ~size:out_size ~k:1 ~s:1 ~p:0 () ]
  in
  let act =
    [ eltwise (tag "s%d.relu") ~count:blocks
        ~shape:[ batch; out_c; out_size; out_size ] () ]
  in
  (first @ rest @ act, out_c, out_size)

let resnet50 ?(batch = 8) () =
  let stem =
    [ conv "conv1" ~batch ~ci:3 ~co:64 ~size:224 ~k:7 ~s:2 ~p:3 ();
      Model.layer "maxpool"
        (Ops.Pool.maxpool2d ~batch ~channels:64 ~height:112 ~width:112
           ~window:2 ~stride:2 ()) ]
  in
  let stages =
    [ (64, 64, 256, 1, 3); (256, 128, 512, 2, 4); (512, 256, 1024, 2, 6);
      (1024, 512, 2048, 2, 3) ]
  in
  let layers, _, _ =
    List.fold_left
      (fun (acc, (in_c, size), stage) (cin, mid, out_c, stride, blocks) ->
        assert (cin = in_c);
        let ls, out_c, out_size =
          bottleneck_stage ~batch ~stage ~in_c ~mid ~out_c ~in_size:size
            ~stride ~blocks
        in
        (acc @ ls, (out_c, out_size), stage + 1))
      (stem, (64, 56), 2) stages
    |> fun (ls, (c, s), _) -> (ls, c, s)
  in
  let head =
    [ Model.layer "avgpool"
        (Ops.Pool.avgpool2d ~batch ~channels:2048 ~height:7 ~width:7 ~window:7
           ~stride:7 ());
      Model.layer "fc" (Ops.Matmul.gemm ~name:"fc" ~m:batch ~k:2048 ~n:1000 ()) ]
  in
  Model.v ~name:"ResNet-50" ~batch (layers @ head)

(* ---------- graph form ---------- *)

(* ResNet-50 as a real dataflow graph: every bottleneck carries its residual
   add and per-conv relu explicitly, so the fusion pass can fold them back
   into the convolutions (conv+relu, expand+add+relu).  Stages still collapse
   the identical repeat blocks into one representative node set with
   [count = blocks - 1] — edges inside the representative are real; the
   block-to-block self edge is approximated by chaining onto the first
   block's output, which has the same shape.  The stem demonstrates the
   bias-add tail (conv1 + bias + relu fold into one kernel); the final
   flatten before [fc] is a rank change the IR has no node for, so the
   classifier is a root. *)
let resnet50_graph ?(batch = 8) () =
  let g = Graph.builder ~name:"ResNet-50" ~batch in
  let conv name ?count ?from ~ci ~co ~size ~k ~s ~p () =
    Graph.add g ?count
      ~deps:(match from with None -> [] | Some p -> [ ("I", p) ])
      name
      (Ops.Conv.conv2d ~batch ~in_channels:ci ~out_channels:co ~height:size
         ~width:size ~kernel:k ~stride:s ~pad:p ())
  in
  let relu name ?count ~from ~shape () =
    Graph.add g ?count ~deps:[ ("X", from) ] name
      (Ops.Elementwise.relu ~shape ())
  in
  let bottleneck ~tag ?count ~input ~in_c ~mid ~out_c ~size ~stride () =
    let out_size = size / stride in
    let oshape = [ batch; out_c; out_size; out_size ] in
    let reduce =
      conv (tag ^ ".reduce") ?count ~from:input ~ci:in_c ~co:mid ~size ~k:1
        ~s:1 ~p:0 ()
    in
    let ra =
      relu (tag ^ ".relu_a") ?count ~from:reduce
        ~shape:[ batch; mid; size; size ] ()
    in
    let c3 =
      conv (tag ^ ".conv3x3") ?count ~from:ra ~ci:mid ~co:mid ~size ~k:3
        ~s:stride ~p:1 ()
    in
    let rb =
      relu (tag ^ ".relu_b") ?count ~from:c3
        ~shape:[ batch; mid; out_size; out_size ] ()
    in
    let expand =
      conv (tag ^ ".expand") ?count ~from:rb ~ci:mid ~co:out_c ~size:out_size
        ~k:1 ~s:1 ~p:0 ()
    in
    let skip =
      if stride = 1 && in_c = out_c then input
      else
        conv (tag ^ ".downsample") ?count ~from:input ~ci:in_c ~co:out_c ~size
          ~k:1 ~s:stride ~p:0 ()
    in
    let sum =
      Graph.add g ?count ~deps:[ ("X", expand); ("Y", skip) ] (tag ^ ".add")
        (Ops.Elementwise.add ~shape:oshape ())
    in
    relu (tag ^ ".relu") ?count ~from:sum ~shape:oshape ()
  in
  let stage ~stage:s ~input ~in_c ~mid ~out_c ~size ~stride ~blocks =
    let first =
      bottleneck ~tag:(Fmt.str "s%d.b1" s) ~input ~in_c ~mid ~out_c ~size
        ~stride ()
    in
    let out_size = size / stride in
    if blocks <= 1 then (first, out_size)
    else
      ( bottleneck ~tag:(Fmt.str "s%d.bn" s) ~count:(blocks - 1) ~input:first
          ~in_c:out_c ~mid ~out_c ~size:out_size ~stride:1 (),
        out_size )
  in
  let c1 = conv "conv1" ~ci:3 ~co:64 ~size:224 ~k:7 ~s:2 ~p:3 () in
  let cb =
    Graph.add g ~deps:[ ("X", c1) ] "conv1.bias"
      (Ops.Elementwise.bias_add ~shape:[ batch; 64; 112; 112 ] ())
  in
  let cr = relu "conv1.relu" ~from:cb ~shape:[ batch; 64; 112; 112 ] () in
  let mp =
    Graph.add g ~deps:[ ("I", cr) ] "maxpool"
      (Ops.Pool.maxpool2d ~batch ~channels:64 ~height:112 ~width:112 ~window:2
         ~stride:2 ())
  in
  let x, _ =
    List.fold_left
      (fun (x, size) (s, in_c, mid, out_c, stride, blocks) ->
        stage ~stage:s ~input:x ~in_c ~mid ~out_c ~size ~stride ~blocks)
      (mp, 56)
      [ (2, 64, 64, 256, 1, 3); (3, 256, 128, 512, 2, 4);
        (4, 512, 256, 1024, 2, 6); (5, 1024, 512, 2048, 2, 3) ]
  in
  let _ap =
    Graph.add g ~deps:[ ("I", x) ] "avgpool"
      (Ops.Pool.avgpool2d ~batch ~channels:2048 ~height:7 ~width:7 ~window:7
         ~stride:7 ())
  in
  let _fc =
    Graph.add g "fc" (Ops.Matmul.gemm ~name:"fc" ~m:batch ~k:2048 ~n:1000 ())
  in
  Graph.build g

(* Basic-block variant for ResNet-34 (Fig. 10 uses it). *)
let basic_stage ~batch ~stage ~in_c ~out_c ~in_size ~stride ~blocks =
  let out_size = in_size / stride in
  let tag fmt = Fmt.str fmt stage in
  let first =
    [ conv (tag "s%d.b1.conv_a") ~batch ~ci:in_c ~co:out_c ~size:in_size ~k:3
        ~s:stride ~p:1 ();
      conv (tag "s%d.b1.conv_b") ~batch ~ci:out_c ~co:out_c ~size:out_size ~k:3
        ~s:1 ~p:1 () ]
  in
  let first =
    if stride = 1 && in_c = out_c then first
    else
      first
      @ [ conv (tag "s%d.b1.downsample") ~batch ~ci:in_c ~co:out_c
            ~size:in_size ~k:1 ~s:stride ~p:0 () ]
  in
  let rest =
    if blocks <= 1 then []
    else
      [ conv (tag "s%d.bn.conv") ~count:(2 * (blocks - 1)) ~batch ~ci:out_c
          ~co:out_c ~size:out_size ~k:3 ~s:1 ~p:1 () ]
  in
  let act =
    [ eltwise (tag "s%d.relu") ~count:blocks
        ~shape:[ batch; out_c; out_size; out_size ] () ]
  in
  (first @ rest @ act, out_c, out_size)

(* VGG-16: the classic all-3x3 conv stack, a standard conv-heavy benchmark
   complementing the residual nets (large uniform GEMM-like convs, no 1x1
   bottlenecks). *)
let vgg16 ?(batch = 8) () =
  (* (output channels, convs in the block); each block ends in a 2x2/2 pool. *)
  let blocks = [ (64, 2); (128, 2); (256, 3); (512, 3); (512, 3) ] in
  let rec build layers in_c size = function
    | [] -> (layers, in_c, size)
    | (out_c, convs) :: rest ->
      let first =
        conv (Fmt.str "conv%d_1" out_c) ~batch ~ci:in_c ~co:out_c ~size ~k:3
          ~s:1 ~p:1 ()
      in
      let others =
        if convs <= 1 then []
        else
          [ conv (Fmt.str "conv%d_n" out_c) ~count:(convs - 1) ~batch
              ~ci:out_c ~co:out_c ~size ~k:3 ~s:1 ~p:1 () ]
      in
      let pool =
        Model.layer (Fmt.str "pool%d" out_c)
          (Ops.Pool.maxpool2d ~batch ~channels:out_c ~height:size ~width:size
             ~window:2 ~stride:2 ())
      in
      let act =
        eltwise (Fmt.str "relu%d" out_c) ~count:convs
          ~shape:[ batch; out_c; size; size ] ()
      in
      build (layers @ (first :: others) @ [ act; pool ]) out_c (size / 2) rest
  in
  let layers, last_c, last_size = build [] 3 224 blocks in
  let head =
    [ Model.layer "fc1"
        (Ops.Matmul.gemm ~name:"fc1" ~m:batch
           ~k:(last_c * last_size * last_size)
           ~n:4096 ());
      Model.layer "fc2" (Ops.Matmul.gemm ~name:"fc2" ~m:batch ~k:4096 ~n:4096 ());
      Model.layer "fc3" (Ops.Matmul.gemm ~name:"fc3" ~m:batch ~k:4096 ~n:1000 ())
    ]
  in
  Model.v ~name:"VGG-16" ~batch (layers @ head)

let resnet34 ?(batch = 8) () =
  let stem =
    [ conv "conv1" ~batch ~ci:3 ~co:64 ~size:224 ~k:7 ~s:2 ~p:3 ();
      Model.layer "maxpool"
        (Ops.Pool.maxpool2d ~batch ~channels:64 ~height:112 ~width:112
           ~window:2 ~stride:2 ()) ]
  in
  let stages =
    [ (64, 64, 1, 3); (64, 128, 2, 4); (128, 256, 2, 6); (256, 512, 2, 3) ]
  in
  let layers, _, _ =
    List.fold_left
      (fun (acc, (in_c, size), stage) (cin, out_c, stride, blocks) ->
        assert (cin = in_c);
        let ls, out_c, out_size =
          basic_stage ~batch ~stage ~in_c ~out_c ~in_size:size ~stride ~blocks
        in
        (acc @ ls, (out_c, out_size), stage + 1))
      (stem, (64, 56), 2) stages
    |> fun (ls, (c, s), _) -> (ls, c, s)
  in
  let head =
    [ Model.layer "avgpool"
        (Ops.Pool.avgpool2d ~batch ~channels:512 ~height:7 ~width:7 ~window:7
           ~stride:7 ());
      Model.layer "fc" (Ops.Matmul.gemm ~name:"fc" ~m:batch ~k:512 ~n:1000 ()) ]
  in
  Model.v ~name:"ResNet-34" ~batch (layers @ head)
