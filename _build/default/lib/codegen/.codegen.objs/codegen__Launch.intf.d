lib/codegen/launch.mli: Fmt Sched
