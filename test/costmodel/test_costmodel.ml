open Sched

let hw = Hardware.Presets.rtx4090
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let gemm_etir ?(m = 256) ?(n = 256) ?(k = 256) () =
  Etir.create (Ops.Op.compute (Ops.Matmul.gemm ~m ~n ~k ()))

(* A hand-checkable GEMM configuration: block 32x16, thread 4x4, rtile1 8. *)
let configured () =
  let e = gemm_etir () in
  let e = Etir.with_stile e ~level:1 ~dim:0 32 in
  let e = Etir.with_stile e ~level:1 ~dim:1 16 in
  let e = Etir.with_stile e ~level:0 ~dim:0 4 in
  let e = Etir.with_stile e ~level:0 ~dim:1 4 in
  let e = Etir.with_rtile e ~level:1 ~dim:0 8 in
  let e = Etir.with_rtile e ~level:0 ~dim:0 2 in
  Etir.with_cur_level e 0

(* ---------- Footprint ---------- *)

let test_footprint_gemm () =
  let e = configured () in
  (* Level-1 tile: A slice 32x8, B slice 8x16, in f32. *)
  check_int "input bytes at smem" ((32 * 8 * 4) + (8 * 16 * 4))
    (Costmodel.Footprint.input_bytes e ~level:1);
  (* Registers include the 4x4 accumulator. *)
  check_int "register bytes"
    (((4 * 2 * 4) + (2 * 4 * 4)) + (4 * 4 * 4))
    (Costmodel.Footprint.bytes_at e ~level:0);
  (* Shared memory excludes the accumulator. *)
  check_int "smem excludes accumulator"
    (Costmodel.Footprint.input_bytes e ~level:1)
    (Costmodel.Footprint.bytes_at e ~level:1)

let test_footprint_conv_halo () =
  (* A strided conv tile's input footprint includes the halo. *)
  let op =
    Ops.Conv.conv2d ~batch:1 ~in_channels:4 ~out_channels:4 ~height:16
      ~width:16 ~kernel:3 ~stride:2 ()
  in
  let e = Etir.create (Ops.Op.compute op) in
  (* Output tile 2x2 with kernel 3, stride 2: input slice spans
     2*(2-1)+3 = 5 per spatial dim. *)
  let e = Etir.with_stile e ~level:1 ~dim:2 2 in
  let e = Etir.with_stile e ~level:1 ~dim:3 2 in
  let e = Etir.with_rtile e ~level:1 ~dim:1 3 in
  let e = Etir.with_rtile e ~level:1 ~dim:2 3 in
  let elems = Costmodel.Footprint.input_elems e ~level:1 in
  let input_elems = List.assoc "I" elems in
  check_int "halo counted" (1 * 1 * 5 * 5) input_elems

(* Growing any tile never shrinks the footprint. *)
let prop_footprint_monotone =
  QCheck.Test.make ~count:300 ~name:"footprint monotone under tile growth"
    QCheck.(make Gen.(triple (int_range 0 2) (int_range 0 1) (int_range 0 500)))
    (fun (level, dim, seed) ->
      let rng = Rng.create ~seed in
      (* Random starting point via a short random walk. *)
      let e = ref (gemm_etir ()) in
      for _ = 1 to 10 do
        match Action.successors !e with
        | [] -> ()
        | succs -> e := snd (Rng.choice rng succs)
      done;
      match Action.apply !e (Action.Tile { level; dim; dir = Action.Grow }) with
      | None -> true
      | Some grown ->
        Costmodel.Footprint.bytes_at grown ~level
        >= Costmodel.Footprint.bytes_at !e ~level)

(* ---------- Traffic ---------- *)

let test_traffic_gemm_formula () =
  let e = configured () in
  (* Classic formula: (M/tm)(N/tn)(K/tk) * (tm*tk + tk*tn) * 4 + out. *)
  let blocks = 256 / 32 * (256 / 16) in
  let steps = 256 / 8 in
  let per_tile = ((32 * 8) + (8 * 16)) * 4 in
  let expected =
    (float_of_int (blocks * steps) *. float_of_int per_tile)
    +. float_of_int (256 * 256 * 4)
  in
  Alcotest.(check (float 1.0))
    "smem fill traffic" expected
    (Costmodel.Traffic.bytes_into e ~level:1)

let test_traffic_compulsory_floor () =
  let e = gemm_etir () in
  (* Whatever the configuration, DRAM traffic never undercuts one read of
     each input plus one write of the output. *)
  Alcotest.(check bool)
    "dram traffic >= compulsory" true
    (Costmodel.Traffic.dram_bytes e >= Costmodel.Traffic.compulsory_bytes e)

let prop_traffic_positive =
  QCheck.Test.make ~count:200 ~name:"traffic positive at every level"
    QCheck.(make Gen.(int_range 0 1000))
    (fun seed ->
      let rng = Rng.create ~seed in
      let e = ref (gemm_etir ()) in
      for _ = 1 to 20 do
        match Action.successors !e with
        | [] -> ()
        | succs -> e := snd (Rng.choice rng succs)
      done;
      Array.for_all (fun t -> t > 0.0) (Costmodel.Traffic.all_levels !e))

(* ---------- Conflict ---------- *)

let test_conflict_strides () =
  let e = configured () in
  (* Thread tile width 4 along the innermost dim: stride 4 words. *)
  check_int "stride words" 4
    (Costmodel.Conflict.access_stride_words e ~bank_width_bytes:4);
  let raw = Costmodel.Conflict.raw_degree e ~hw in
  Alcotest.(check (float 1e-9)) "raw degree for stride 4" 4.0 raw;
  (* Vthreads divide the stride. *)
  let e' = Etir.with_vthread e ~dim:1 4 in
  Alcotest.(check (float 1e-9))
    "vthreads clear the conflict" 1.0
    (Costmodel.Conflict.raw_degree e' ~hw);
  Alcotest.(check bool)
    "dilution softens" true
    (Costmodel.Conflict.factor e ~hw < raw)

(* ---------- Occupancy ---------- *)

let test_occupancy_limits () =
  let e = configured () in
  let occ = Costmodel.Occupancy.of_etir e ~hw in
  (* 8x4 = 32 threads per block; tiny block: thread-slot limited. *)
  Alcotest.(check bool) "resident > 0" true (occ.Costmodel.Occupancy.blocks_per_sm > 0);
  Alcotest.(check bool)
    "occupancy in range" true
    (occ.Costmodel.Occupancy.sm_occupancy > 0.0
    && occ.Costmodel.Occupancy.sm_occupancy <= 1.0);
  (* An oversized block cannot launch. *)
  let too_big = Etir.with_stile (gemm_etir ()) ~level:1 ~dim:0 256 in
  let too_big = Etir.with_stile too_big ~level:1 ~dim:1 256 in
  let occ2 = Costmodel.Occupancy.of_etir too_big ~hw in
  check_int "unlaunchable" 0 occ2.Costmodel.Occupancy.blocks_per_sm

(* ---------- Mem_check ---------- *)

let test_mem_check () =
  let e = gemm_etir () in
  check_bool "initial state legal" true (Costmodel.Mem_check.ok e ~hw);
  check_bool "initial state capacity-legal" true
    (Costmodel.Mem_check.ok_capacity e ~hw);
  (* Oversized register tile trips the per-thread capacity. *)
  let big = Etir.with_stile e ~level:0 ~dim:0 256 in
  let big = Etir.with_stile big ~level:0 ~dim:1 256 in
  check_bool "register overflow flagged" false
    (Costmodel.Mem_check.ok_capacity big ~hw);
  (* Launch-only violations pass the capacity check but fail the full one. *)
  let wide = Etir.with_stile e ~level:1 ~dim:0 256 in
  let wide = Etir.with_stile wide ~level:1 ~dim:1 256 in
  check_bool "launch violation passes capacity check" true
    (Costmodel.Mem_check.ok_capacity wide ~hw);
  check_bool "launch violation fails full check" false
    (Costmodel.Mem_check.ok wide ~hw)

(* Each violation kind, rendered: the message must name the level (or the
   launch limit) and both byte counts. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let violation_of ~level ~what etir =
  match
    List.find_opt
      (fun v ->
        v.Costmodel.Mem_check.level = level
        && v.Costmodel.Mem_check.what = what)
      (Costmodel.Mem_check.check etir ~hw)
  with
  | Some v -> v
  | None -> Alcotest.failf "no %s violation at level %d" what level

let assert_renders v ~names_level =
  let open Costmodel.Mem_check in
  let msg = Fmt.str "%a" pp_violation v in
  check_bool (Fmt.str "message %S names the level" msg) true
    (contains msg names_level);
  check_bool "message names the required count" true
    (contains msg (string_of_int v.required_bytes));
  check_bool "message names the capacity" true
    (contains msg (string_of_int v.capacity_bytes))

let test_pp_violation_register_capacity () =
  (* 16x16 accumulator alone exceeds the 255-register thread slice. *)
  let e = Etir.with_stile (gemm_etir ()) ~level:0 ~dim:0 16 in
  let e = Etir.with_stile e ~level:0 ~dim:1 16 in
  let v = violation_of ~level:0 ~what:"per-thread registers" e in
  assert_renders v ~names_level:"level 0"

let test_pp_violation_smem_capacity () =
  (* 256x256 block with a 64-wide reduce chunk stages 128 KiB > 100 KiB. *)
  let e = Etir.with_stile (gemm_etir ()) ~level:1 ~dim:0 256 in
  let e = Etir.with_stile e ~level:1 ~dim:1 256 in
  let e = Etir.with_rtile e ~level:1 ~dim:0 64 in
  let v = violation_of ~level:1 ~what:"shared memory per block" e in
  assert_renders v ~names_level:"level 1";
  check_int "required is the staged footprint"
    (Costmodel.Footprint.bytes_at e ~level:1)
    v.Costmodel.Mem_check.required_bytes

let test_pp_violation_outer_cache () =
  (* A full 4096^3 GEMM wave tile (192 MiB) cannot fit the 72 MiB L2. *)
  let e = gemm_etir ~m:4096 ~n:4096 ~k:4096 () in
  let e = Etir.with_stile e ~level:2 ~dim:0 4096 in
  let e = Etir.with_stile e ~level:2 ~dim:1 4096 in
  let e = Etir.with_rtile e ~level:2 ~dim:0 4096 in
  let v = violation_of ~level:2 ~what:"l2" e in
  assert_renders v ~names_level:"level 2"

let test_pp_violation_launch_threads () =
  (* 256x256 block of 1x1 threads asks for 65536 threads per block. *)
  let e = Etir.with_stile (gemm_etir ()) ~level:1 ~dim:0 256 in
  let e = Etir.with_stile e ~level:1 ~dim:1 256 in
  let v = violation_of ~level:(-1) ~what:"threads per block" e in
  assert_renders v ~names_level:"launch limit";
  check_int "required is the thread count" 65536
    v.Costmodel.Mem_check.required_bytes

let test_pp_violation_launch_register_file () =
  (* 1024 threads x 320 B of registers exceed the 256 KiB SM file while
     each thread and the launch shape stay individually legal. *)
  let e = Etir.with_stile (gemm_etir ()) ~level:1 ~dim:0 256 in
  let e = Etir.with_stile e ~level:1 ~dim:1 256 in
  let e = Etir.with_stile e ~level:0 ~dim:0 8 in
  let e = Etir.with_stile e ~level:0 ~dim:1 8 in
  let v = violation_of ~level:(-1) ~what:"register file per block" e in
  assert_renders v ~names_level:"launch limit"

(* ---------- Model ---------- *)

let test_model_sanity () =
  let e = configured () in
  let m = Costmodel.Model.evaluate ~hw e in
  let open Costmodel.Metrics in
  check_bool "time positive" true (m.exec_time_s > 0.0);
  check_bool "rates within [0,1]" true
    (m.compute_throughput >= 0.0 && m.compute_throughput <= 1.0
    && m.sm_occupancy >= 0.0 && m.sm_occupancy <= 1.0
    && m.mem_busy >= 0.0 && m.mem_busy <= 1.0
    && m.l2_hit_rate >= 0.0 && m.l2_hit_rate <= 1.0);
  check_bool "conflicts >= 1" true (m.bank_conflict_factor >= 1.0)

let test_model_infeasible_sentinel () =
  let e = gemm_etir () in
  let too_big = Etir.with_stile e ~level:1 ~dim:0 256 in
  let too_big = Etir.with_stile too_big ~level:1 ~dim:1 256 in
  let m = Costmodel.Model.evaluate ~hw too_big in
  Alcotest.(check (float 1.0))
    "sentinel time" Costmodel.Model.infeasible_time_s
    m.Costmodel.Metrics.exec_time_s

let test_model_prefers_tuned () =
  (* A reasonable schedule must beat the unscheduled one. *)
  let naive = Costmodel.Model.score ~hw (gemm_etir ()) in
  let tuned = Costmodel.Model.score ~hw (configured ()) in
  check_bool "tuned beats naive" true (tuned > naive)

let test_model_ablation_knobs () =
  let e = configured () in
  let base = Costmodel.Model.evaluate ~hw e in
  let no_conflicts =
    Costmodel.Model.evaluate
      ~knobs:{ Costmodel.Model.default_knobs with model_conflicts = false }
      ~hw e
  in
  check_bool "conflict-free not slower" true
    (no_conflicts.Costmodel.Metrics.exec_time_s
    <= base.Costmodel.Metrics.exec_time_s +. 1e-12)

let test_polish_improves () =
  let e = gemm_etir () in
  let before = Costmodel.Model.score ~hw e in
  let _, metrics, evals = Costmodel.Polish.greedy ~budget:16 ~hw e in
  check_bool "polish never degrades" true
    (Costmodel.Metrics.score metrics >= before);
  check_bool "polish evaluated candidates" true (evals > 0)

(* Passing the start metrics skips the leader's duplicate evaluation but
   must land on the same local optimum. *)
let test_polish_metrics_passthrough () =
  let e = gemm_etir () in
  let metrics = Costmodel.Model.evaluate ~hw e in
  let e1, m1, evals1 = Costmodel.Polish.greedy ~budget:16 ~hw e in
  let e2, m2, evals2 = Costmodel.Polish.greedy ~budget:16 ~metrics ~hw e in
  check_bool "same refined state" true (Sched.Etir.equal e1 e2);
  check_bool "same metrics" true (m1 = m2);
  check_bool "one fewer evaluation" true (evals2 = evals1 - 1)

(* The memo cache behind [evaluate_cached] must be invisible except in
   speed: along a random walk (with revisits) it returns exactly what the
   uncached model returns, and the registered counters move. *)
let prop_evaluate_cached_transparent =
  QCheck.Test.make ~count:100 ~name:"evaluate_cached = evaluate"
    QCheck.(make Gen.(int_range 0 1000))
    (fun seed ->
      let rng = Rng.create ~seed in
      let e = ref (gemm_etir ()) in
      let ok = ref true in
      for _ = 1 to 15 do
        (match Action.successors !e with
        | [] -> ()
        | succs -> e := snd (Rng.choice rng succs));
        if Costmodel.Model.evaluate_cached ~hw !e
           <> Costmodel.Model.evaluate ~hw !e
        then ok := false
      done;
      !ok)

let test_cache_stats_counters () =
  let stats_for name =
    List.assoc_opt name (Costmodel.Model.cache_stats ())
  in
  match stats_for "evaluate" with
  | None -> Alcotest.fail "evaluate cache not registered"
  | Some before ->
    let e = gemm_etir ~m:512 ~n:128 ~k:64 () in
    ignore (Costmodel.Model.evaluate_cached ~hw e);
    ignore (Costmodel.Model.evaluate_cached ~hw e);
    (match stats_for "evaluate" with
    | None -> Alcotest.fail "evaluate cache disappeared"
    | Some after ->
      check_bool "a miss was recorded" true
        (after.Parallel.Memo.misses > before.Parallel.Memo.misses);
      check_bool "a hit was recorded" true
        (after.Parallel.Memo.hits > before.Parallel.Memo.hits))

(* The tentpole invariant: deriving a state's components incrementally
   along any chain of construction edges is bit-for-bit what a from-scratch
   analysis produces — same component record, same metrics, and the walked
   state keeps its identity (fingerprint) no matter which path built it. *)
let prop_incremental_equals_full =
  QCheck.Test.make ~count:200 ~name:"incremental components = full rebuild"
    QCheck.(make Gen.(int_range 0 1000))
    (fun seed ->
      let rng = Rng.create ~seed in
      let m, n, k =
        match seed mod 4 with
        | 0 -> (256, 256, 256)
        | 1 -> (512, 128, 64)
        | 2 -> (4096, 1, 512)
        | _ -> (48, 96, 192)
      in
      let e = ref (gemm_etir ~m ~n ~k ()) in
      let comps = ref (Costmodel.Delta.of_etir ~hw !e) in
      let ok = ref true in
      for _ = 1 to 20 do
        match Action.successors !e with
        | [] -> ()
        | succs ->
          let action, next = Rng.choice rng succs in
          let incr_comps =
            Costmodel.Delta.child ~hw ~before:!e ~parent:!comps ~action next
          in
          let full_comps = Costmodel.Delta.of_etir ~hw next in
          if incr_comps <> full_comps then ok := false;
          if
            Costmodel.Model.evaluate_with ~hw next incr_comps
            <> Costmodel.Model.evaluate ~hw next
          then ok := false;
          (* Fingerprint agreement: the chained state and a freshly rebuilt
             copy of the same edge are indistinguishable to the memo layer. *)
          (match List.find_opt (fun (a, _) -> a = action) (Action.successors !e) with
          | Some (_, rebuilt) ->
            if Etir.fingerprint next <> Etir.fingerprint rebuilt then
              ok := false
          | None -> ok := false);
          e := next;
          comps := incr_comps
      done;
      !ok)

(* The build counters must reflect which path ran: a full build bumps
   [st_full_builds], an edge derivation bumps [st_incremental_builds], and
   disabling the feature routes [child] through the full path. *)
let test_delta_stats_counters () =
  let open Costmodel.Delta in
  let e = gemm_etir () in
  reset_stats ();
  let comps = of_etir ~hw e in
  check_int "one full build" 1 (stats ()).st_full_builds;
  (match Action.successors e with
  | [] -> Alcotest.fail "seed state has no successors"
  | (action, next) :: _ ->
    ignore (child ~hw ~before:e ~parent:comps ~action next);
    let s = stats () in
    check_int "one incremental build" 1 s.st_incremental_builds;
    check_bool "level counters moved" true
      (s.st_levels_recomputed + s.st_levels_reused > 0);
    set_enabled false;
    Fun.protect
      ~finally:(fun () -> set_enabled true)
      (fun () ->
        ignore (child ~hw ~before:e ~parent:comps ~action next);
        check_int "disabled child counts as full build" 2
          (stats ()).st_full_builds))

let prop_model_deterministic =
  QCheck.Test.make ~count:100 ~name:"model evaluation is deterministic"
    QCheck.(make Gen.(int_range 0 1000))
    (fun seed ->
      let rng = Rng.create ~seed in
      let e = ref (gemm_etir ()) in
      for _ = 1 to 15 do
        match Action.successors !e with
        | [] -> ()
        | succs -> e := snd (Rng.choice rng succs)
      done;
      let a = Costmodel.Model.evaluate ~hw !e in
      let b = Costmodel.Model.evaluate ~hw !e in
      a = b)

(* ---------- Learned tier: features and predictor ---------- *)

let test_feature_schema () =
  let e = configured () in
  let comps = Costmodel.Delta.of_etir ~hw e in
  let v = Costmodel.Feature.vector ~comps ~state:e in
  check_int "row width" Costmodel.Feature.dim (Array.length v);
  check_bool "all finite" true (Array.for_all Float.is_finite v);
  (* The incremental buffer fill matches the one-shot constructor. *)
  let buf = Costmodel.Feature.blank () in
  Costmodel.Feature.set_comps buf comps;
  Costmodel.Feature.set_state buf e;
  check_bool "buffer reuse matches vector" true (buf = v)

(* Deterministic synthetic rows with a linear ground truth. *)
let synth_samples n =
  List.init n (fun i ->
      let x =
        Array.init Costmodel.Feature.dim (fun j ->
            Float.sin (float_of_int ((i * 37) + (j * 11))))
      in
      let y = (2.0 *. x.(0)) -. (0.7 *. x.(5)) +. (0.3 *. x.(20)) +. 1.0 in
      (x, y))

let test_train_recovers_linear () =
  match Costmodel.Predict.train_head ~boost:0 (synth_samples 200) with
  | Error e -> Alcotest.fail e
  | Ok head ->
    let r = Costmodel.Predict.evaluate_head head (synth_samples 64) in
    check_bool "holdout correlation > 0.99" true
      (r.Costmodel.Predict.r_corr > 0.99)

let test_boosting_reduces_residual () =
  (* Add a non-linear term the ridge head cannot express; the boosted
     stumps must strictly reduce the holdout error. *)
  let bent =
    List.map
      (fun (x, y) -> (x, y +. (if x.(3) > 0.2 then 1.5 else -1.5)))
      (synth_samples 200)
  in
  let rmse boost =
    match Costmodel.Predict.train_head ~boost bent with
    | Error e -> Alcotest.fail e
    | Ok head ->
      (Costmodel.Predict.evaluate_head head bent).Costmodel.Predict.r_rmse
  in
  check_bool "stumps cut rmse" true (rmse 32 < rmse 0 *. 0.8)

let test_train_two_head () =
  let samples = synth_samples 64 in
  (match Costmodel.Predict.train ~self:samples ~edge:[] () with
  | Ok m ->
    check_bool "self head present" true (Costmodel.Predict.self_head m <> None);
    check_bool "edge head absent" true (Costmodel.Predict.edge_head m = None)
  | Error e -> Alcotest.fail e);
  match Costmodel.Predict.train ~self:[] ~edge:[] () with
  | Ok _ -> Alcotest.fail "training with no samples must fail"
  | Error _ -> ()

let test_training_label_penalty () =
  let feasible = configured () in
  let comps = Costmodel.Delta.of_etir ~hw feasible in
  check_bool "feasible label is the plain transform" true
    (Costmodel.Predict.training_label ~hw feasible comps 1e12
    = Costmodel.Predict.label_of_score 1e12);
  (* Blow the shared-memory tile far past capacity. *)
  let e = gemm_etir ~m:2048 ~n:2048 ~k:2048 () in
  let e = Etir.with_stile e ~level:1 ~dim:0 1024 in
  let e = Etir.with_stile e ~level:1 ~dim:1 1024 in
  let e = Etir.with_rtile e ~level:1 ~dim:0 512 in
  let infeasible = Etir.with_cur_level e 0 in
  let icomps = Costmodel.Delta.of_etir ~hw infeasible in
  check_bool "infeasible label is penalised" true
    (Costmodel.Predict.training_label ~hw infeasible icomps 1e12
    < Costmodel.Predict.label_of_score 1e12)

let test_dump_sink () =
  let rows = ref [] in
  Costmodel.Predict.set_dump
    (Some (fun kind x y -> rows := (kind, Array.length x, y) :: !rows));
  check_bool "dumping on" true (Costmodel.Predict.dumping ());
  let e = configured () in
  let comps = Costmodel.Delta.of_etir ~hw e in
  Costmodel.Predict.observe Costmodel.Predict.Self
    (Costmodel.Feature.vector ~comps ~state:e)
    1.0;
  Costmodel.Predict.set_dump None;
  check_bool "dumping off" true (not (Costmodel.Predict.dumping ()));
  match !rows with
  | [ (Costmodel.Predict.Self, w, 1.0) ] ->
    check_int "row width" Costmodel.Feature.dim w
  | _ -> Alcotest.fail "expected exactly one self row"

let () =
  Alcotest.run "costmodel"
    [ ("footprint",
       [ Alcotest.test_case "gemm slices" `Quick test_footprint_gemm;
         Alcotest.test_case "conv halo" `Quick test_footprint_conv_halo;
         QCheck_alcotest.to_alcotest prop_footprint_monotone ]);
      ("traffic",
       [ Alcotest.test_case "gemm formula" `Quick test_traffic_gemm_formula;
         Alcotest.test_case "compulsory floor" `Quick
           test_traffic_compulsory_floor;
         QCheck_alcotest.to_alcotest prop_traffic_positive ]);
      ("conflict", [ Alcotest.test_case "strides" `Quick test_conflict_strides ]);
      ("occupancy", [ Alcotest.test_case "limits" `Quick test_occupancy_limits ]);
      ("mem_check",
       [ Alcotest.test_case "categories" `Quick test_mem_check;
         Alcotest.test_case "pp register capacity" `Quick
           test_pp_violation_register_capacity;
         Alcotest.test_case "pp smem capacity" `Quick
           test_pp_violation_smem_capacity;
         Alcotest.test_case "pp outer cache" `Quick test_pp_violation_outer_cache;
         Alcotest.test_case "pp launch threads" `Quick
           test_pp_violation_launch_threads;
         Alcotest.test_case "pp launch register file" `Quick
           test_pp_violation_launch_register_file ]);
      ("model",
       [ Alcotest.test_case "sanity" `Quick test_model_sanity;
         Alcotest.test_case "infeasible sentinel" `Quick
           test_model_infeasible_sentinel;
         Alcotest.test_case "prefers tuned schedules" `Quick
           test_model_prefers_tuned;
         Alcotest.test_case "ablation knobs" `Quick test_model_ablation_knobs;
         Alcotest.test_case "polish improves" `Quick test_polish_improves;
         Alcotest.test_case "polish metrics passthrough" `Quick
           test_polish_metrics_passthrough;
         Alcotest.test_case "cache stats counters" `Quick
           test_cache_stats_counters;
         QCheck_alcotest.to_alcotest prop_evaluate_cached_transparent;
         QCheck_alcotest.to_alcotest prop_model_deterministic ]);
      ("delta",
       [ Alcotest.test_case "build counters" `Quick test_delta_stats_counters;
         QCheck_alcotest.to_alcotest prop_incremental_equals_full ]);
      ("predict",
       [ Alcotest.test_case "feature schema" `Quick test_feature_schema;
         Alcotest.test_case "ridge recovers linear" `Quick
           test_train_recovers_linear;
         Alcotest.test_case "boosting reduces residual" `Quick
           test_boosting_reduces_residual;
         Alcotest.test_case "two-head training" `Quick test_train_two_head;
         Alcotest.test_case "infeasible label penalty" `Quick
           test_training_label_penalty;
         Alcotest.test_case "dump sink" `Quick test_dump_sink ]) ]
