lib/costmodel/traffic.ml: Array Compute Float Footprint Sched Tensor_lang
