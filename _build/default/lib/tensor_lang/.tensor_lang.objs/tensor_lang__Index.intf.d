lib/tensor_lang/index.mli: Fmt
