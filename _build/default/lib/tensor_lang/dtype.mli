(** Element datatypes of tensors. *)

type t = F16 | F32 | I8 | I32

val size_bytes : t -> int
val to_string : t -> string

(** CUDA C type name used by the code generator. *)
val c_name : t -> string

val equal : t -> t -> bool
val pp : t Fmt.t
