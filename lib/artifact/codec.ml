(* The artifact wire format: a versioned, checksummed, line-oriented text
   encoding shared by every component codec.

   Design constraints (ISSUE 3):
   - human-diffable: one field per line, `key value...` with OCaml-quoted
     strings, so `git diff` and text tools work on stored kernels;
   - no [Marshal]: every byte is produced and parsed explicitly, so a file
     written by one build loads in any other (or fails loudly);
   - total decoding: decoders return [result] with a positioned error —
     corrupt input must never raise or silently mis-load.

   Framing: line 1 is `gensor-artifact <version>`, line 2 is
   `md5 <hex of payload>`, everything after is the payload.  The checksum
   covers the payload byte-for-byte, so truncation and bit-rot are caught
   before any field is parsed. *)

type error = { line : int; msg : string }

let error line fmt = Fmt.kstr (fun msg -> Error { line; msg }) fmt
let pp_error ppf e = Fmt.pf ppf "line %d: %s" e.line e.msg
let error_to_string e = Fmt.str "%a" pp_error e

let ( let* ) = Result.bind

(* ---------- scalar atoms ---------- *)

(* OCaml-escaped, quoted: [%S] never emits a raw newline, space, paren or
   quote character, so quoted strings tokenize unambiguously on one line. *)
let quote s = Printf.sprintf "%S" s

(* "%.17g" round-trips every finite float64 exactly through
   [float_of_string]; nan and inf print as parseable atoms too. *)
let float_str f = Printf.sprintf "%.17g" f

(* ---------- tokens ---------- *)

type token = Atom of string | Str of string | Lparen | Rparen

let is_atom_char c =
  not (c = ' ' || c = '\t' || c = '(' || c = ')' || c = '"')

let tokenize ~line s =
  let n = String.length s in
  let closing_quote start =
    let rec go j =
      if j >= n then None
      else if s.[j] = '\\' then if j + 1 >= n then None else go (j + 2)
      else if s.[j] = '"' then Some j
      else go (j + 1)
    in
    go start
  in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | '"' -> (
        match closing_quote (i + 1) with
        | None -> error line "unterminated string literal"
        | Some j -> (
          let raw = String.sub s (i + 1) (j - i - 1) in
          match Scanf.unescaped raw with
          | exception _ -> error line "bad escape sequence in string %S" raw
          | u -> go (j + 1) (Str u :: acc)))
      | _ ->
        let j = ref i in
        while !j < n && is_atom_char s.[!j] do incr j done;
        go !j (Atom (String.sub s i (!j - i)) :: acc)
  in
  go 0 []

let take_int ~line = function
  | Atom a :: rest -> (
    match int_of_string_opt a with
    | Some v -> Ok (v, rest)
    | None -> error line "expected integer, got %S" a)
  | Str s :: _ -> error line "expected integer, got string %S" s
  | (Lparen | Rparen) :: _ -> error line "expected integer, got parenthesis"
  | [] -> error line "expected integer, got end of line"

let take_float ~line = function
  | Atom a :: rest -> (
    match float_of_string_opt a with
    | Some v -> Ok (v, rest)
    | None -> error line "expected float, got %S" a)
  | Str s :: _ -> error line "expected float, got string %S" s
  | (Lparen | Rparen) :: _ -> error line "expected float, got parenthesis"
  | [] -> error line "expected float, got end of line"

let take_str ~line = function
  | Str s :: rest -> Ok (s, rest)
  | Atom a :: _ -> error line "expected quoted string, got %S" a
  | (Lparen | Rparen) :: _ -> error line "expected quoted string, got parenthesis"
  | [] -> error line "expected quoted string, got end of line"

let take_atom ~line = function
  | Atom a :: rest -> Ok (a, rest)
  | Str s :: _ -> error line "expected bare word, got string %S" s
  | (Lparen | Rparen) :: _ -> error line "expected bare word, got parenthesis"
  | [] -> error line "expected bare word, got end of line"

let finish ~line = function
  | [] -> Ok ()
  | _ -> error line "trailing tokens on line"

let take_ints ~line toks =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | toks ->
      let* v, rest = take_int ~line toks in
      go (v :: acc) rest
  in
  go [] toks

let take_floats ~line toks =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | toks ->
      let* v, rest = take_float ~line toks in
      go (v :: acc) rest
  in
  go [] toks

(* ---------- line cursor ---------- *)

type cursor = { lines : string array; base : int; mutable pos : int }

let cursor ?(base = 1) lines =
  { lines = Array.of_list lines; base; pos = 0 }

let lineno c = c.base + c.pos

let at_end c =
  let rec go i =
    i >= Array.length c.lines || (String.trim c.lines.(i) = "" && go (i + 1))
  in
  go c.pos

let next_line c =
  let rec go () =
    if c.pos >= Array.length c.lines then
      error (c.base + Array.length c.lines) "unexpected end of artifact payload"
    else begin
      let ln = lineno c in
      let l = c.lines.(c.pos) in
      c.pos <- c.pos + 1;
      if String.trim l = "" then go () else Ok (ln, l)
    end
  in
  go ()

(* First word of the next non-blank line, without consuming anything —
   lets decoders branch on optional trailing fields. *)
let peek_key c =
  let rec go i =
    if i >= Array.length c.lines then None
    else begin
      let l = String.trim c.lines.(i) in
      if l = "" then go (i + 1)
      else
        match String.index_opt l ' ' with
        | Some j -> Some (String.sub l 0 j)
        | None -> Some l
    end
  in
  go c.pos

(* [field c key] reads the next non-blank line, checks that its leading word
   is [key] and returns the remaining tokens with the line number. *)
let field c key =
  let* ln, l = next_line c in
  let* toks = tokenize ~line:ln l in
  match toks with
  | Atom k :: rest when String.equal k key -> Ok (ln, rest)
  | Atom k :: _ -> error ln "expected field %S, found %S" key k
  | _ -> error ln "expected field %S" key

let field_int c key =
  let* ln, toks = field c key in
  let* v, rest = take_int ~line:ln toks in
  let* () = finish ~line:ln rest in
  Ok v

let field_float c key =
  let* ln, toks = field c key in
  let* v, rest = take_float ~line:ln toks in
  let* () = finish ~line:ln rest in
  Ok v

let field_str c key =
  let* ln, toks = field c key in
  let* v, rest = take_str ~line:ln toks in
  let* () = finish ~line:ln rest in
  Ok v

let field_atom c key =
  let* ln, toks = field c key in
  let* v, rest = take_atom ~line:ln toks in
  let* () = finish ~line:ln rest in
  Ok v

let field_ints c key =
  let* ln, toks = field c key in
  take_ints ~line:ln toks

let field_floats c key =
  let* ln, toks = field c key in
  take_floats ~line:ln toks

(* ---------- s-expressions (compute bodies, index expressions) ---------- *)

type sexp = A of string | S of string | L of sexp list

let rec sexp_to_buf buf = function
  | A a -> Buffer.add_string buf a
  | S s -> Buffer.add_string buf (quote s)
  | L xs ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ' ';
        sexp_to_buf buf x)
      xs;
    Buffer.add_char buf ')'

let sexp_to_string x =
  let b = Buffer.create 64 in
  sexp_to_buf b x;
  Buffer.contents b

let sexp_of_tokens ~line toks =
  let rec one = function
    | Atom a :: rest -> Ok (A a, rest)
    | Str s :: rest -> Ok (S s, rest)
    | Lparen :: rest -> list [] rest
    | Rparen :: _ -> error line "unexpected ')' in expression"
    | [] -> error line "unexpected end of expression"
  and list acc = function
    | Rparen :: rest -> Ok (L (List.rev acc), rest)
    | [] -> error line "missing ')' in expression"
    | toks ->
      let* x, rest = one toks in
      list (x :: acc) rest
  in
  let* x, rest = one toks in
  match rest with
  | [] -> Ok x
  | _ -> error line "trailing tokens after expression"

(* ---------- framing ---------- *)

let magic = "gensor-artifact"
let version = 2

let checksum payload = Digest.to_hex (Digest.string payload)

let frame payload =
  Fmt.str "%s %d\nmd5 %s\n%s" magic version (checksum payload) payload

(* Payload lines start at file line 3. *)
let payload_base = 3

let unframe text =
  match String.index_opt text '\n' with
  | None -> error 1 "not a gensor artifact (missing header line)"
  | Some i -> (
    let header = String.sub text 0 i in
    let after = i + 1 in
    match String.index_from_opt text after '\n' with
    | None -> error 2 "truncated artifact (missing checksum line)"
    | Some j ->
      let sumline = String.sub text after (j - after) in
      let payload = String.sub text (j + 1) (String.length text - j - 1) in
      let* () =
        match String.split_on_char ' ' header with
        | [ m; v ] when String.equal m magic -> (
          match int_of_string_opt v with
          | Some n when n = version -> Ok ()
          | Some n ->
            error 1 "unsupported artifact version %d (this build reads %d)" n
              version
          | None -> error 1 "malformed artifact version %S" v)
        | _ -> error 1 "not a gensor artifact (bad magic line %S)" header
      in
      let* () =
        match String.split_on_char ' ' sumline with
        | [ "md5"; hex ] ->
          if String.equal hex (checksum payload) then Ok ()
          else error 2 "checksum mismatch: artifact is corrupt or truncated"
        | _ -> error 2 "malformed checksum line %S" sumline
      in
      Ok (String.split_on_char '\n' payload))
