(* Vendor-library oracle, modelled on cuBLAS/cuDNN dispatch.

   A vendor library ships a small bank of hand-tuned kernel templates per
   operator class and dispatches by shape.  Templates are conflict-free by
   construction (real kernels pad and swizzle shared memory), which we model
   by maximising the vthread interleave.  The bank is *fixed*: on balanced,
   standard shapes some template fits almost perfectly; on heavily unbalanced
   shapes (Table V) every template clamps badly — exactly the behaviour the
   paper reports for cuBLAS. *)

open Sched

type result = {
  etir : Etir.t;
  metrics : Costmodel.Metrics.t;
  templates_tried : int;
  wall_time_s : float;
}

(* A template assigns (block tile, thread tile) to the two innermost spatial
   dimensions and a reduce chain to the innermost reduce dimension; leading
   (batch-like) spatial dimensions run one block row each. *)
type template = {
  t1_i : int; t1_j : int;   (* block tile on the two matrix-like dims *)
  t0_i : int; t0_j : int;   (* thread tile *)
  k1 : int;                 (* shared-memory reduce tile *)
}

(* Banks are generated as the cross product of canonical balanced choices —
   the accumulation of years of hand tuning over *standard* shapes.  Every
   entry is square-ish and power-of-two, which is exactly why the bank
   misfits unbalanced shapes. *)
let product thread_tiles block_tiles k1s =
  List.concat_map
    (fun (t0_i, t0_j) ->
      List.concat_map
        (fun (t1_i, t1_j) ->
          List.filter_map
            (fun k1 ->
              if t0_i <= t1_i && t0_j <= t1_j then
                Some { t1_i; t1_j; t0_i; t0_j; k1 }
              else None)
            k1s)
        block_tiles)
    thread_tiles

let gemm_bank =
  product
    [ (8, 8); (8, 4); (4, 8); (4, 4); (16, 8); (2, 2) ]
    [ (256, 128); (128, 256); (128, 128); (128, 64); (64, 128); (64, 64);
      (256, 64); (32, 32) ]
    [ 8; 16; 32 ]

let conv_bank =
  product
    [ (8, 2); (8, 1); (4, 2); (4, 4); (2, 2); (1, 1) ]
    [ (64, 16); (128, 8); (64, 8); (32, 16); (32, 8); (64, 32); (16, 16) ]
    [ 8; 16; 32 ]

let gemv_bank =
  product
    [ (1, 1); (2, 1); (4, 1); (8, 1) ]
    [ (128, 1); (256, 1); (512, 1); (1024, 1) ]
    [ 16; 32; 64; 128 ]

let memory_bound_bank =
  product
    [ (1, 1); (2, 1); (4, 1) ]
    [ (32, 8); (64, 4); (16, 16); (128, 2); (64, 8); (256, 1) ]
    [ 2; 4 ]

let bank_for (kind : Ops.Op.kind) =
  match kind with
  | Ops.Op.Gemm | Ops.Op.Batch_matmul -> gemm_bank
  | Ops.Op.Conv2d -> conv_bank
  | Ops.Op.Gemv -> gemv_bank
  | Ops.Op.Depthwise_conv2d | Ops.Op.Avgpool2d | Ops.Op.Maxpool2d
  | Ops.Op.Elementwise ->
    memory_bound_bank

let largest_pow2_le n =
  let rec go p = if p * 2 <= n then go (p * 2) else p in
  if n < 1 then 1 else go 1

(* Instantiate a template on a compute definition.  The template's (i, j)
   legs land on the two spatial dims with the largest extents (how a vendor
   kernel views any operator as an implicit matrix); other spatial dims get
   unit block rows.  Wave tiles give the L2 locality a tuned kernel's
   rasterised launch order achieves. *)
let instantiate etir0 template =
  let n = Etir.num_spatial etir0 in
  let sext = Etir.spatial_extents etir0 in
  let rext = Etir.reduce_extents etir0 in
  let etir = ref (Etir.with_cur_level etir0 0) in
  let set dim t0 t1 =
    let t0 = min t0 sext.(dim) and t1 = min t1 sext.(dim) in
    let t0 = min t0 t1 in
    etir := Etir.with_stile !etir ~level:0 ~dim t0;
    etir := Etir.with_stile !etir ~level:1 ~dim t1;
    etir := Etir.with_stile !etir ~level:2 ~dim (min (t1 * 4) sext.(dim));
    (* Conflict-free emulation: interleave at the maximum legal vthread. *)
    etir := Etir.with_vthread !etir ~dim (largest_pow2_le t0)
  in
  let by_extent =
    List.sort
      (fun a b -> compare (sext.(b), a) (sext.(a), b))
      (List.init n Fun.id)
  in
  let dim_i, dim_j =
    match by_extent with
    | [ only ] -> (only, -1)
    | first :: second :: _ -> (first, second)
    | [] -> invalid_arg "Cublas.instantiate: no spatial dims"
  in
  for dim = 0 to n - 1 do
    if dim = dim_i then set dim template.t0_i template.t1_i
    else if dim = dim_j then set dim template.t0_j template.t1_j
    else set dim 1 1
  done;
  for dim = 0 to Etir.num_reduce etir0 - 1 do
    let k1 = min template.k1 rext.(dim) in
    let k0 = min 4 k1 in
    etir := Etir.with_rtile !etir ~level:0 ~dim k0;
    etir := Etir.with_rtile !etir ~level:1 ~dim k1;
    etir := Etir.with_rtile !etir ~level:2 ~dim (min (k1 * 8) rext.(dim))
  done;
  !etir

let compile ?(knobs = Costmodel.Model.default_knobs) ~hw op =
  let start = Unix.gettimeofday () in
  let compute = Ops.Op.compute op in
  let levels = Hardware.Gpu_spec.schedulable_cache_levels hw in
  let etir0 = Etir.create ~num_levels:levels compute in
  let bank = bank_for (Ops.Op.kind op) in
  let candidates =
    List.filter_map
      (fun template ->
        let etir = instantiate etir0 template in
        if Costmodel.Mem_check.ok etir ~hw then
          Some (etir, Costmodel.Model.evaluate ~knobs ~hw etir)
        else None)
      bank
  in
  let etir, _ =
    match candidates with
    | [] ->
      (* Every template misfits: run the smallest one anyway, letting the
         model charge its inefficiency. *)
      let etir = instantiate etir0 { t1_i = 16; t1_j = 16; t0_i = 1; t0_j = 1; k1 = 4 } in
      (etir, Costmodel.Model.evaluate ~knobs ~hw etir)
    | first :: rest ->
      List.fold_left
        (fun (be, bm) (e, m) ->
          if Costmodel.Metrics.score m > Costmodel.Metrics.score bm then (e, m)
          else (be, bm))
        first rest
  in
  (* Vendor kernels embed per-shape micro-tuning (rasterisation order,
     wave-size heuristics) beyond the template grid; represent it by a short
     local refinement of the dispatched template. *)
  let etir, metrics, _ = Costmodel.Polish.greedy ~knobs ~budget:32 ~hw etir in
  { etir; metrics; templates_tried = List.length bank;
    wall_time_s = Unix.gettimeofday () -. start }
