lib/costmodel/footprint.mli: Sched
