lib/dnn/resnet.mli: Model
