lib/tensor_lang/access.ml: Fmt Index Interval List
