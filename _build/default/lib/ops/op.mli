(** Operators: a compute definition tagged with its operator class.

    The class drives baseline behaviour (vendor template banks are per-class)
    and reporting labels; all scheduling works on the underlying
    {!Tensor_lang.Compute.t}. *)

type kind =
  | Gemm
  | Gemv
  | Batch_matmul
  | Conv2d
  | Depthwise_conv2d
  | Avgpool2d
  | Maxpool2d
  | Elementwise

type t

val v : kind:kind -> compute:Tensor_lang.Compute.t -> t
val kind : t -> kind
val compute : t -> Tensor_lang.Compute.t
val name : t -> string

(** Total FLOPs of one execution. *)
val flops : t -> int

val kind_to_string : kind -> string

(** Whether the operator class is compute-bound (GEMM-like) rather than
    memory-bound (pooling, GEMV, elementwise). *)
val is_compute_bound : t -> bool

val pp : t Fmt.t
