(* Experiment harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md §3 for the index).

   Usage: main.exe [experiment ...]
   with experiments among fig1 fig6 fig7 tab5 tab6 fig8 fig9a fig9b fig10
   fig11 fig12 mem ablation dyn exec wall; no argument runs everything
   except [wall]. *)

let experiments =
  [ ("fig1", Fig1.run); ("fig6", Fig6.run); ("fig7", Fig6.run_edge);
    ("tab5", Tab5.run); ("tab6", Tab6.run); ("fig8", Fig8.run);
    ("fig9a", Fig9.run); ("fig9b", Fig9.run_edge); ("fig10", Fig10.run);
    ("fig11", Fig11.run); ("fig12", Fig12.run); ("mem", Mem_overhead.run); ("ablation", Ablation.run); ("dyn", Dyn_cache.run);
    ("exec", Exec_tier.run); ("wall", Wall.run) ]

let default_set =
  [ "fig1"; "fig6"; "fig7"; "tab5"; "tab6"; "fig8"; "fig9a"; "fig9b"; "fig10";
    "fig11"; "fig12"; "mem"; "ablation"; "dyn"; "exec" ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> default_set
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
        Fmt.epr "unknown experiment %s (available: %s)@." name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested;
  let comparisons = Ctx.all_comparisons () in
  if comparisons <> [] then begin
    Ctx.section "Paper vs. measured summary";
    Report.Compare.print_all comparisons
  end;
  Fmt.pr "@.total bench time: %.1f s@." (Unix.gettimeofday () -. t0)
