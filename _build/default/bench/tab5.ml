(* Table V — hardware metric breakdown between Gensor and Ansor for three
   unbalanced GEMMs on the RTX 4090. *)

(* The paper's measurements: (compute throughput, mem busy, L2 hit,
   exec ms) for Gensor then Ansor. *)
let paper_values =
  [ ("[65536,4,1024]", (0.189, 0.509, 0.996, 0.287), (0.171, 0.467, 0.927, 0.303));
    ("[32768,64,2048]", (0.839, 0.641, 0.665, 0.369), (0.763, 0.617, 0.517, 0.387));
    ("[16384,32,1024]", (0.692, 0.821, 0.992, 0.083), (0.612, 0.803, 0.951, 0.091)) ]

let run () =
  Ctx.section "Table V — metric breakdown on unbalanced GEMMs (RTX 4090)";
  let hw = Hardware.Presets.rtx4090 in
  let gensor = Pipeline.Methods.gensor () in
  let ansor = Pipeline.Methods.ansor () in
  let rows =
    List.map
      (fun (label, make_op) ->
        let op = make_op () in
        let g = (gensor.Pipeline.Methods.compile ~hw op).Pipeline.Methods.metrics in
        let a = (ansor.Pipeline.Methods.compile ~hw op).Pipeline.Methods.metrics in
        (label, g, a))
      Workloads.Table_iv.table_v
  in
  Report.Table.print
    (Report.Table.v
       ~headers:
         [ "MKN"; "method"; "Compute Thr."; "MemBusy"; "L2 Hit";
           "Exec (ms)" ]
       (List.concat_map
          (fun (label, g, a) ->
            let open Costmodel.Metrics in
            let row name m =
              [ label; name; Report.Table.pct m.compute_throughput;
                Report.Table.pct m.mem_busy; Report.Table.pct m.l2_hit_rate;
                Report.Table.fx3 (exec_time_ms m) ]
            in
            [ row "Gensor" g; row "Ansor" a ])
          rows));
  (* Paper-vs-measured: the headline relation is that Gensor's execution
     time beats Ansor's on every unbalanced shape. *)
  List.iter2
    (fun (label, g, a) (_, (_, _, _, paper_g_ms), (_, _, _, paper_a_ms)) ->
      let open Costmodel.Metrics in
      let measured = exec_time_ms a /. exec_time_ms g in
      let paper = paper_a_ms /. paper_g_ms in
      Ctx.record ~experiment:"tab5"
        ~quantity:(Fmt.str "Ansor/Gensor exec-time ratio %s" label)
        ~paper ~measured ~unit_:"x" ())
    rows paper_values;
  Fmt.pr "(paper: Gensor leads Ansor on all three shapes, 1.05-1.10x)@."
