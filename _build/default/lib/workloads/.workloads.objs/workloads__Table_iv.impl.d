lib/workloads/table_iv.ml: List Ops
