(* Text codec for {!Costmodel.Metrics.t}: one fixed-order field per line
   plus the per-level footprint vector.  Floats use the exact round-trip
   formatting of {!Codec.float_str}, so [decode (encode m)] is structurally
   identical to [m]. *)

open Costmodel

let ( let* ) = Result.bind

let encode (m : Metrics.t) =
  let f k v = Fmt.str "%s %s" k (Codec.float_str v) in
  let i k v = Fmt.str "%s %d" k v in
  [ f "exec_time_s" m.exec_time_s;
    f "achieved_flops" m.achieved_flops;
    f "compute_throughput" m.compute_throughput;
    f "sm_occupancy" m.sm_occupancy;
    f "mem_busy" m.mem_busy;
    f "l2_hit_rate" m.l2_hit_rate;
    f "dram_bytes" m.dram_bytes;
    f "l2_bytes" m.l2_bytes;
    f "smem_bytes" m.smem_bytes;
    f "bank_conflict_factor" m.bank_conflict_factor;
    i "threads_per_block" m.threads_per_block;
    i "grid_blocks" m.grid_blocks;
    Fmt.str "footprints%s"
      (String.concat ""
         (List.map (fun v -> Fmt.str " %d" v) (Array.to_list m.footprints)))
  ]

let decode cur =
  let* exec_time_s = Codec.field_float cur "exec_time_s" in
  let* achieved_flops = Codec.field_float cur "achieved_flops" in
  let* compute_throughput = Codec.field_float cur "compute_throughput" in
  let* sm_occupancy = Codec.field_float cur "sm_occupancy" in
  let* mem_busy = Codec.field_float cur "mem_busy" in
  let* l2_hit_rate = Codec.field_float cur "l2_hit_rate" in
  let* dram_bytes = Codec.field_float cur "dram_bytes" in
  let* l2_bytes = Codec.field_float cur "l2_bytes" in
  let* smem_bytes = Codec.field_float cur "smem_bytes" in
  let* bank_conflict_factor = Codec.field_float cur "bank_conflict_factor" in
  let* threads_per_block = Codec.field_int cur "threads_per_block" in
  let* grid_blocks = Codec.field_int cur "grid_blocks" in
  let* footprints = Codec.field_ints cur "footprints" in
  Ok
    { Metrics.exec_time_s; achieved_flops; compute_throughput; sm_occupancy;
      mem_busy; l2_hit_rate; dram_bytes; l2_bytes; smem_bytes;
      bank_conflict_factor; threads_per_block; grid_blocks;
      footprints = Array.of_list footprints }
