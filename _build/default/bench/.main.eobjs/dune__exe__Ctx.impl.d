bench/ctx.ml: Costmodel Fmt List Pipeline Report
