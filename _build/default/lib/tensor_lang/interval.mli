(** Inclusive integer intervals with conservative arithmetic.

    Used by the cost model to bound the set of tensor elements a tile of the
    iteration domain touches: the per-tile footprint behind the traffic [Q]
    and footprint [F] of paper Eq. 1.  Exact for affine index expressions,
    conservative for div/mod. *)

type t

(** [v lo hi] is the interval [lo..hi]; raises [Invalid_argument] when
    [lo > hi]. *)
val v : int -> int -> t

val point : int -> t
val lo : t -> int
val hi : t -> int

(** Number of integers in the interval. *)
val extent : t -> int

val contains : t -> int -> bool
val equal : t -> t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** Floor division; the divisor interval must be positive. *)
val div : t -> t -> t

(** Remainder; the divisor interval must be positive. *)
val rem : t -> t -> t

val min_ : t -> t -> t
val max_ : t -> t -> t
val union : t -> t -> t
val inter : t -> t -> t option

(** [of_index ~env idx] bounds [idx] when each variable ranges over
    [env var]. *)
val of_index : env:(string -> t) -> Index.t -> t

val pp : t Fmt.t
