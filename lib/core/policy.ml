(* The Markov transition policy — paper Algorithm 2.

   For the current state, every candidate (action, dimension) pair is scored
   with its analytical benefit, the cache action's score is modulated by the
   annealing multiplier, scores are normalised into a probability
   distribution, and one transition is drawn by roulette selection.

   A small stay probability implements Algorithm 2's fall-through (the loop
   can return no action, leaving the state unchanged).  Besides matching the
   pseudo-code, the induced self-loop is what makes the chain aperiodic: all
   tiling/vthread edges flip a lattice parity, so without self-loops the
   same-level subgraph would be bipartite. *)

open Sched

type choice = {
  action : Action.t;
  next : Etir.t;
  next_comps : Costmodel.Delta.components;
      (* the successor's cost-model components, derived incrementally along
         the edge — the annealing loop carries them so the next policy step
         starts from a ready-made before-state analysis even with the memo
         cache disabled *)
  probability : float;
}

let stay_probability = 0.02

(* The paper's annealing multiplier on the cache action,
   3 / (1 + e^{-(ln 5 / 10)(t - midpoint)}): the cache switch becomes up to
   3x more likely as construction progresses, which forces convergence to
   the next memory level.  [t] counts the steps spent at the *current* level
   — the clock restarts when a cache switch fires, so every level gets its
   own ramp (with a global clock the second switch would fire immediately
   and skip the shared-memory level entirely).
   The paper's midpoint of 10 steps is calibrated to its own benefit scale;
   ours is configurable (default 35) so that large-extent operators get
   enough growth steps per level before the switch becomes likely. *)
let cache_multiplier ?(midpoint = 35.0) ~iteration () =
  let t = float_of_int iteration in
  3.0 /. (1.0 +. exp (-.(log 5.0 /. 10.0) *. (t -. midpoint)))

type mode = {
  vthread_enabled : bool;  (* Table VI ablation: allow Set_vthread actions *)
  tree_mode : bool;
      (* degenerate to a tree: no inverse tiling, i.e. no backtracking *)
  cache_midpoint : float;  (* annealing-sigmoid midpoint, steps per level *)
}

let graph_mode =
  { vthread_enabled = true; tree_mode = false; cache_midpoint = 35.0 }

let allowed mode (action : Action.t) =
  match action with
  | Action.Set_vthread _ -> mode.vthread_enabled
  | Action.Tile { dir = Action.Shrink; _ }
  | Action.Rtile { dir = Action.Shrink; _ } ->
    not mode.tree_mode
  | Action.Tile { dir = Action.Grow; _ }
  | Action.Rtile { dir = Action.Grow; _ }
  | Action.Cache ->
    true

(* The iteration-independent part of a state's transition distribution:
   every legal successor with its positive base benefit.  This is the
   expensive part of a policy step (successor generation plus ~25 benefit
   analyses), and the annealing chain revisits states constantly — via
   backtracking edges and across restart chains — so it is memoized
   process-wide.  Only the cache action's weight depends on the iteration
   (through the annealing multiplier), and the multiplier is strictly
   positive, so it can be applied at lookup time without changing which
   transitions survive the positivity filter.  Keys carry the construction
   cursor (successors depend on it), the mode (it filters actions) and the
   device. *)
type base_key = {
  k_etir : Etir.t;
  k_hw : Hardware.Gpu_spec.t;
  k_mode : mode;
}

let base_memo :
    ( base_key,
      (Action.t * Etir.t * Costmodel.Delta.components * float) list )
    Parallel.Memo.t =
  Parallel.Memo.create ~name:"transitions" ~capacity:8192
    ~hash:(fun k ->
      (Int64.to_int (Etir.fingerprint k.k_etir)
      lxor (Etir.cur_level k.k_etir * 0x01000193)
      lxor Hashtbl.hash (Hardware.Gpu_spec.name k.k_hw))
      land max_int)
    ~equal:(fun a b ->
      Etir.cur_level a.k_etir = Etir.cur_level b.k_etir
      && a.k_mode = b.k_mode
      && Etir.eval_equal a.k_etir b.k_etir
      && (a.k_hw == b.k_hw || a.k_hw = b.k_hw))
    ()

let base_weighted ?comps ~hw ~mode etir =
  Parallel.Memo.find_or_add base_memo
    { k_etir = etir; k_hw = hw; k_mode = mode }
    (fun () ->
      (* One hoisted analysis context for the whole successor set — the
         before-state traffic/footprint/occupancy is identical across them.
         When the caller carries the before state's components (the anneal
         loop threads them edge by edge), the context is a set of field
         reads; otherwise they are rebuilt once here. *)
      let before_comps =
        match comps with
        | Some c -> c
        | None -> Costmodel.Delta.of_etir ~hw etir
      in
      let ctx = Benefit.context_of ~hw etir before_comps in
      List.filter_map
        (fun (action, next) ->
          if not (allowed mode action) then None
          else begin
            (* Components travel along the edge: only the slices [action]
               invalidates are recomputed for the successor. *)
            let next_comps =
              Costmodel.Delta.child ~hw ~before:etir ~parent:before_comps
                ~action next
            in
            let benefit =
              Benefit.of_action_comps ctx ~after:next ~after_comps:next_comps
                action
            in
            if benefit <= 0.0 then None
            else Some (action, next, next_comps, benefit)
          end)
        (Action.successors etir))

(* All legal, positively-weighted transitions with normalised
   probabilities.  The normalisation leaves room for [stay_probability]. *)
let transitions ?comps ~hw ~mode ~iteration etir =
  let weighted =
    List.map
      (fun (action, next, next_comps, benefit) ->
        let benefit =
          match action with
          | Action.Cache ->
            benefit
            *. cache_multiplier ~midpoint:mode.cache_midpoint ~iteration ()
          | Action.Tile _ | Action.Rtile _ | Action.Set_vthread _ -> benefit
        in
        (action, next, next_comps, benefit))
      (base_weighted ?comps ~hw ~mode etir)
  in
  let total =
    List.fold_left (fun acc (_, _, _, b) -> acc +. b) 0.0 weighted
  in
  if total <= 0.0 then []
  else
    let scale = (1.0 -. stay_probability) /. total in
    List.map
      (fun (action, next, next_comps, benefit) ->
        { action; next; next_comps; probability = benefit *. scale })
      weighted

(* Roulette selection over the transition distribution; [None] means the
   chain stays in place this step. *)
let select rng choices =
  match choices with
  | [] -> None
  | _ ->
    let weights =
      Array.of_list (List.map (fun c -> c.probability) choices @ [ stay_probability ])
    in
    let idx = Rng.roulette rng weights in
    if idx = List.length choices then None else Some (List.nth choices idx)
