lib/dnn/kernel_cache.ml: Axis Compute Costmodel Float Fmt Gensor Hardware Hashtbl List Sched String Tensor_lang
