(* Compiled execution tier: an ETIR schedule lowered to a flat
   register-based bytecode program, run by a tight dispatch-loop VM.

   The tree-walking interpreter ([Scheduled.run]) pays a string-keyed env
   lookup per variable, a [List.assoc_opt] per tensor read and a
   list-allocated coordinate per element.  This tier removes all of that at
   compile time (TVM's core move of lowering loop nests instead of
   interpreting them):

   - every loop variable gets a fixed integer slot ([vars] array);
   - every distinct tensor access becomes a {e read site} whose flat
     row-major offset is computed by a small integer program into a
     dedicated offset register — affine accesses collapse to one [IAFF]
     (base + Sigma coeff*var) instruction with precomputed strides;
   - the scalar body becomes a float register program over those offset
     registers, with direct unsafe loads from the input buffers;
   - in the innermost reduce stripe, affine offsets advance by their
     precomputed per-step delta instead of being recomputed, and the two
     ubiquitous reduction bodies (multiply-accumulate and single-read
     fold) are recognised at compile time and run as dedicated unsafe
     float-array loops.

   The spatial loop nest (blocks / logical units / vthread stripes)
   mirrors [Scheduled.run] exactly, so both tiers visit exactly the same
   output elements; the interpreter's chunked reduction loops are folded
   flat here (see [reduce_dim] below) without changing the accumulation
   order, so results are bit-identical and [Scheduled.run] stays the
   differential-testing oracle.  Unsafe array accesses are sound because [Compute.v] validates
   every access's bounding region over the full iteration domain against
   the declared tensor shapes, and [check_inputs] re-validates the actual
   input shapes against the declaration at run time. *)

open Tensor_lang
open Sched

(* ---------- bytecode ISA (documented in DESIGN.md §15) ---------- *)

(* Integer stream (offset computation; operands follow the opcode):
     ICONST dst k            iregs.(dst) <- k
     IVAR   dst slot         iregs.(dst) <- vars.(slot)
     IADD   dst a b          iregs.(dst) <- iregs.(a) + iregs.(b)
     ISUB   dst a b
     IMUL   dst a b
     IDIV   dst a b          floor division, positive divisor
     IMOD   dst a b          floor modulo, positive divisor
     IMIN   dst a b
     IMAX   dst a b
     IADDK  dst a k          iregs.(dst) <- iregs.(a) + k
     IMULK  dst a k          iregs.(dst) <- iregs.(a) * k
     IAFF   dst t base (slot coeff){t}
                             iregs.(dst) <- base + Sigma vars.(slot)*coeff *)
let iconst = 0
and ivar = 1
and iadd = 2
and isub = 3
and imul = 4
and idiv = 5
and imod = 6
and imin = 7
and imax = 8
and iaddk = 9
and imulk = 10
and iaff = 11

(* Float stream (body / epilogue evaluation):
     FCONST dst pool         fregs.(dst) <- fpool.(pool)
     FLOAD  dst tensor off   fregs.(dst) <- data.(tensor).(iregs.(off))
     FNEG   dst a
     FADD   dst a b … FMIN   dst a b    arithmetic on fregs
     FACC   dst              fregs.(dst) <- the reduced+scaled accumulator
                             (the epilogue's shadowed output read) *)
let fconst = 0
and fload = 1
and fneg = 2
and fadd = 3
and fsub = 4
and fmul = 5
and fdiv = 6
and fmax' = 7
and fmin' = 8
and facc = 9

(* Innermost-stripe specialisation, chosen at compile time. *)
type kernel =
  | Mac of int * int  (* acc <- acc + t_a[o_a] * t_b[o_b]; the GEMM/conv body *)
  | Fold of int       (* acc <- combine acc t_a[o_a]; pooling / elementwise *)
  | Generic           (* dispatch the body program per element *)

type t = {
  compute : Compute.t;
  n : int;  (* spatial dims *)
  m : int;  (* reduce dims *)
  sext : int array;
  rext : int array;
  bsize : int array;
  stripe : int array;
  units : int array;
  init : float;
  scale : float;
  sum : bool;  (* combine = Sum *)
  tensors : string array;  (* tensor id -> input name *)
  tshapes : int list array;
  n_sites : int;  (* read sites; iregs.(site) holds the site's offset *)
  site_tensor : int array;
  body_idx : int array;  (* int program: body site offsets from vars *)
  epi_idx : int array;  (* int program: epilogue site offsets *)
  deltas : int array option;
      (* per-site innermost-reduce offset step; present iff every body
         site is affine, enabling incremental offsets in the stripe *)
  body_code : int array;  (* float program; value lands in freg 0 *)
  epi_code : int array option;
  fpool : float array;
  n_iregs : int;
  n_fregs : int;
  kernel : kernel;
  out_strides : int array;
}

let ceil_div a b = (a + b - 1) / b

(* ---------- counters ---------- *)

let c_programs = Trace.Counter.make "exec.compiled.programs"
let c_runs = Trace.Counter.make "exec.compiled.runs"
let c_points = Trace.Counter.make "exec.compiled.points"
let c_elements = Trace.Counter.make "exec.compiled.elements"

(* ---------- affine analysis ---------- *)

(* [affine ix] is [Some (base, terms)] when [ix = base + Sigma coeff*var]
   with each variable occurring once in [terms]; [None] otherwise (Div,
   Mod, Min, Max, or a product of two variable-bearing operands). *)
let rec affine ix =
  let merge t1 t2 =
    List.fold_left
      (fun acc (v, c) ->
        match List.assoc_opt v acc with
        | None -> (v, c) :: acc
        | Some c0 -> (v, c0 + c) :: List.remove_assoc v acc)
      t1 t2
  in
  let lift2 f a b =
    match (affine a, affine b) with
    | Some (ba, ta), Some (bb, tb) -> f (ba, ta) (bb, tb)
    | _ -> None
  in
  match ix with
  | Index.Const c -> Some (c, [])
  | Index.Var v -> Some (0, [ (v, 1) ])
  | Index.Add (a, b) ->
    lift2 (fun (ba, ta) (bb, tb) -> Some (ba + bb, merge ta tb)) a b
  | Index.Sub (a, b) ->
    lift2
      (fun (ba, ta) (bb, tb) ->
        Some (ba - bb, merge ta (List.map (fun (v, c) -> (v, -c)) tb)))
      a b
  | Index.Mul (a, b) ->
    lift2
      (fun (ba, ta) (bb, tb) ->
        match (ta, tb) with
        | [], _ -> Some (ba * bb, List.map (fun (v, c) -> (v, ba * c)) tb)
        | _, [] -> Some (ba * bb, List.map (fun (v, c) -> (v, bb * c)) ta)
        | _ -> None)
      a b
  | Index.Div _ | Index.Mod _ | Index.Min _ | Index.Max _ -> None

(* ---------- compiler ---------- *)

type site = { s_tensor : int; s_access : Access.t; s_affine : (int * int array) option }

type ctx = {
  slot_of : string -> int;  (* loop variable -> vars slot *)
  n_slots : int;
  tensor_of : string -> int;
  tensor_strides : int array array;  (* tensor id -> row-major strides *)
  mutable sites : site list;  (* reversed; site id = position *)
  mutable n_sites_c : int;
  mutable pool : float list;  (* reversed float constant pool *)
  mutable n_pool : int;
  mutable max_ireg : int;
  mutable max_freg : int;
}

let touch_ireg ctx r = if r >= ctx.max_ireg then ctx.max_ireg <- r + 1
let touch_freg ctx r = if r >= ctx.max_freg then ctx.max_freg <- r + 1

let pool_const ctx f =
  ctx.pool <- f :: ctx.pool;
  ctx.n_pool <- ctx.n_pool + 1;
  ctx.n_pool - 1

(* Emission into a reversed int list; [program] materialises the array. *)
let emit buf ints = buf := List.rev_append ints !buf
let program buf = Array.of_list (List.rev !buf)

(* Compile an index expression into [dst], using dst, dst+1, ... as an
   evaluation stack.  Constant operands fold into IADDK/IMULK. *)
let rec compile_index ctx buf dst ix =
  touch_ireg ctx dst;
  let binop op a b =
    compile_index ctx buf dst a;
    compile_index ctx buf (dst + 1) b;
    emit buf [ op; dst; dst; dst + 1 ]
  in
  match ix with
  | Index.Const c -> emit buf [ iconst; dst; c ]
  | Index.Var v -> emit buf [ ivar; dst; ctx.slot_of v ]
  | Index.Add (a, Index.Const c) | Index.Add (Index.Const c, a) ->
    compile_index ctx buf dst a;
    emit buf [ iaddk; dst; dst; c ]
  | Index.Sub (a, Index.Const c) ->
    compile_index ctx buf dst a;
    emit buf [ iaddk; dst; dst; -c ]
  | Index.Mul (a, Index.Const c) | Index.Mul (Index.Const c, a) ->
    compile_index ctx buf dst a;
    emit buf [ imulk; dst; dst; c ]
  | Index.Add (a, b) -> binop iadd a b
  | Index.Sub (a, b) -> binop isub a b
  | Index.Mul (a, b) -> binop imul a b
  | Index.Div (a, b) -> binop idiv a b
  | Index.Mod (a, b) -> binop imod a b
  | Index.Min (a, b) -> binop imin a b
  | Index.Max (a, b) -> binop imax a b

(* The flat offset of [access] as an affine form over vars slots, when
   every index dimension is affine. *)
let access_affine ctx tensor access =
  let strides = ctx.tensor_strides.(tensor) in
  let rec go d base coeffs = function
    | [] -> Some (base, coeffs)
    | ix :: rest -> (
      match affine ix with
      | None -> None
      | Some (b, terms) ->
        let s = strides.(d) in
        List.iter
          (fun (v, c) ->
            let slot = ctx.slot_of v in
            coeffs.(slot) <- coeffs.(slot) + (c * s))
          terms;
        go (d + 1) (base + (b * s)) coeffs rest)
  in
  go 0 0 (Array.make ctx.n_slots 0) (Access.indices access)

(* Register a read site (dedup on structurally identical accesses) and
   return its id; its offset register is the id itself. *)
let site_of ctx access =
  let tensor = ctx.tensor_of (Access.tensor access) in
  let existing =
    let rec find i = function
      | [] -> None
      | s :: rest ->
        if s.s_tensor = tensor && s.s_access = access then
          Some (ctx.n_sites_c - 1 - i)
        else find (i + 1) rest
    in
    find 0 ctx.sites
  in
  match existing with
  | Some id -> id
  | None ->
    let id = ctx.n_sites_c in
    ctx.sites <-
      { s_tensor = tensor; s_access = access;
        s_affine = access_affine ctx tensor access }
      :: ctx.sites;
    ctx.n_sites_c <- id + 1;
    touch_ireg ctx id;
    id

(* Emit the offset computation of site [id] into its offset register. *)
let compile_site_offset ctx buf scratch id =
  let s = List.nth ctx.sites (ctx.n_sites_c - 1 - id) in
  match s.s_affine with
  | Some (base, coeffs) ->
    let terms = ref [] in
    Array.iteri
      (fun slot c -> if c <> 0 then terms := (slot, c) :: !terms)
      coeffs;
    let terms = List.rev !terms in
    emit buf [ iaff; id; List.length terms; base ];
    List.iter (fun (slot, c) -> emit buf [ slot; c ]) terms
  | None ->
    let strides = ctx.tensor_strides.(s.s_tensor) in
    emit buf [ iconst; id; 0 ];
    List.iteri
      (fun d ix ->
        match ix with
        | Index.Const c -> emit buf [ iaddk; id; id; c * strides.(d) ]
        | _ ->
          compile_index ctx buf scratch ix;
          emit buf [ imulk; scratch; scratch; strides.(d) ];
          emit buf [ iadd; id; id; scratch ])
      (Access.indices s.s_access)

(* Compile a scalar expression into float register [dst] (stack
   discipline as for indices).  [acc_tensor] names the tensor whose reads
   mean "the accumulator" (the epilogue's shadowed output); body
   compilation passes [None]. *)
let rec compile_expr ctx buf ~acc_tensor dst expr =
  touch_freg ctx dst;
  let binop op a b =
    compile_expr ctx buf ~acc_tensor dst a;
    compile_expr ctx buf ~acc_tensor (dst + 1) b;
    emit buf [ op; dst; dst; dst + 1 ]
  in
  match expr with
  | Expr.Imm f -> emit buf [ fconst; dst; pool_const ctx f ]
  | Expr.Read access when acc_tensor = Some (Access.tensor access) ->
    emit buf [ facc; dst ]
  | Expr.Read access ->
    let id = site_of ctx access in
    let tensor = ctx.tensor_of (Access.tensor access) in
    emit buf [ fload; dst; tensor; id ]
  | Expr.Neg a ->
    compile_expr ctx buf ~acc_tensor dst a;
    emit buf [ fneg; dst; dst ]
  | Expr.Add (a, b) -> binop fadd a b
  | Expr.Sub (a, b) -> binop fsub a b
  | Expr.Mul (a, b) -> binop fmul a b
  | Expr.Div (a, b) -> binop fdiv a b
  | Expr.Max (a, b) -> binop fmax' a b
  | Expr.Min (a, b) -> binop fmin' a b

let compile etir =
  Trace.with_span ~name:"exec.compile" @@ fun () ->
  Trace.Counter.incr c_programs;
  let compute = Etir.compute etir in
  let spatial = Array.of_list (Compute.spatial_axes compute) in
  let reduce = Array.of_list (Compute.reduce_axes compute) in
  let n = Array.length spatial and m = Array.length reduce in
  let sext = Array.map Axis.extent spatial in
  let rext = Array.map Axis.extent reduce in
  let bsize = Array.init n (fun i -> Etir.stile_eff etir ~level:1 ~dim:i) in
  let tsize = Array.init n (fun i -> Etir.stile etir ~level:0 ~dim:i) in
  let vths = Array.init n (fun i -> Etir.vthread etir ~dim:i) in
  let stripe = Array.init n (fun i -> ceil_div tsize.(i) vths.(i)) in
  let units =
    Array.init n (fun i -> ceil_div bsize.(i) tsize.(i) * vths.(i))
  in
  (* Loop-variable slots: spatial 0..n-1, reduce n..n+m-1. *)
  let slot_of name =
    let rec find i arr base =
      if i = Array.length arr then None
      else if Axis.name arr.(i) = name then Some (base + i)
      else find (i + 1) arr base
    in
    match find 0 spatial 0 with
    | Some s -> s
    | None -> (
      match find 0 reduce n with
      | Some s -> s
      | None -> invalid_arg (Fmt.str "Compiled: unbound variable %s" name))
  in
  let inputs = Array.of_list (Compute.inputs compute) in
  let tensors = Array.map (fun i -> i.Compute.in_name) inputs in
  let tshapes = Array.map (fun i -> i.Compute.in_shape) inputs in
  let tensor_of name =
    let rec find i =
      if i = Array.length tensors then
        invalid_arg (Fmt.str "Compiled: read of undeclared tensor %s" name)
      else if tensors.(i) = name then i
      else find (i + 1)
    in
    find 0
  in
  let strides_of shape =
    let a = Array.of_list shape in
    let k = Array.length a in
    let st = Array.make k 1 in
    for i = k - 2 downto 0 do
      st.(i) <- st.(i + 1) * a.(i + 1)
    done;
    st
  in
  let ctx =
    { slot_of; n_slots = n + m; tensor_of;
      tensor_strides = Array.map strides_of tshapes;
      sites = []; n_sites_c = 0; pool = []; n_pool = 0;
      max_ireg = 0; max_freg = 0 }
  in
  (* Body: float program first (registers its read sites), then the int
     program computing those sites' offsets. *)
  let body_buf = ref [] in
  compile_expr ctx body_buf ~acc_tensor:None 0 (Compute.body compute);
  let body_sites = ctx.n_sites_c in
  (* Epilogue: reads of the output tensor become FACC, everything else is
     a regular site (over spatial variables only, per validation). *)
  let epi_code =
    match Compute.epilogue compute with
    | None -> None
    | Some e ->
      let buf = ref [] in
      compile_expr ctx buf ~acc_tensor:(Some (Compute.out_name compute)) 0 e;
      Some (program buf)
  in
  (* Offset programs: scratch registers live above the site registers. *)
  let scratch = ctx.n_sites_c in
  touch_ireg ctx scratch;
  let body_idx_buf = ref [] in
  for id = 0 to body_sites - 1 do
    compile_site_offset ctx body_idx_buf scratch id
  done;
  let epi_idx_buf = ref [] in
  for id = body_sites to ctx.n_sites_c - 1 do
    compile_site_offset ctx epi_idx_buf scratch id
  done;
  let sites = Array.of_list (List.rev ctx.sites) in
  (* Incremental innermost offsets: legal when every body site is affine;
     the per-step delta is the coefficient of the innermost reduce slot. *)
  let deltas =
    if m = 0 || body_sites = 0 then None
    else
      let inner_slot = n + m - 1 in
      let rec build id acc =
        if id = body_sites then Some (Array.of_list (List.rev acc))
        else
          match sites.(id).s_affine with
          | Some (_, coeffs) -> build (id + 1) (coeffs.(inner_slot) :: acc)
          | None -> None
      in
      build 0 []
  in
  let sum = Compute.combine compute = Compute.Sum in
  (* Innermost-stripe specialisation (requires incremental offsets). *)
  let kernel =
    if m = 0 || deltas = None then Generic
    else
      match Compute.body compute with
      | Expr.Mul (Expr.Read a, Expr.Read b) when sum ->
        Mac (site_of ctx a, site_of ctx b)
      | Expr.Read a -> Fold (site_of ctx a)
      | _ -> Generic
  in
  { compute; n; m; sext; rext; bsize; stripe; units;
    init = Compute.init compute; scale = Compute.scale compute; sum;
    tensors; tshapes;
    n_sites = ctx.n_sites_c;
    site_tensor = Array.map (fun s -> s.s_tensor) sites;
    body_idx = program body_idx_buf; epi_idx = program epi_idx_buf;
    deltas; body_code = program body_buf; epi_code;
    fpool = Array.of_list (List.rev ctx.pool);
    n_iregs = ctx.max_ireg; n_fregs = ctx.max_freg;
    kernel;
    out_strides = strides_of (Compute.output_shape compute) }

(* ---------- VM ---------- *)

(* Dispatch loops.  Opcodes are matched as integer literals (the compiler
   emits the same values via the named constants above) so the match
   compiles to a jump table, and operands are fetched with explicit
   unsafe reads — no closures in the hot loop. *)

let exec_int code vars iregs =
  let len = Array.length code in
  let pc = ref 0 in
  while !pc < len do
    let base = !pc in
    match Array.unsafe_get code base with
    | 0 (* ICONST *) ->
      Array.unsafe_set iregs
        (Array.unsafe_get code (base + 1))
        (Array.unsafe_get code (base + 2));
      pc := base + 3
    | 1 (* IVAR *) ->
      Array.unsafe_set iregs
        (Array.unsafe_get code (base + 1))
        (Array.unsafe_get vars (Array.unsafe_get code (base + 2)));
      pc := base + 3
    | 9 (* IADDK *) ->
      Array.unsafe_set iregs
        (Array.unsafe_get code (base + 1))
        (Array.unsafe_get iregs (Array.unsafe_get code (base + 2))
        + Array.unsafe_get code (base + 3));
      pc := base + 4
    | 10 (* IMULK *) ->
      Array.unsafe_set iregs
        (Array.unsafe_get code (base + 1))
        (Array.unsafe_get iregs (Array.unsafe_get code (base + 2))
        * Array.unsafe_get code (base + 3));
      pc := base + 4
    | 11 (* IAFF *) ->
      let t = Array.unsafe_get code (base + 2) in
      let acc = ref (Array.unsafe_get code (base + 3)) in
      for i = 0 to t - 1 do
        acc :=
          !acc
          + Array.unsafe_get vars (Array.unsafe_get code (base + 4 + (2 * i)))
            * Array.unsafe_get code (base + 5 + (2 * i))
      done;
      Array.unsafe_set iregs (Array.unsafe_get code (base + 1)) !acc;
      pc := base + 4 + (2 * t)
    | op ->
      let a = Array.unsafe_get iregs (Array.unsafe_get code (base + 2))
      and b = Array.unsafe_get iregs (Array.unsafe_get code (base + 3)) in
      let v =
        match op with
        | 2 (* IADD *) -> a + b
        | 3 (* ISUB *) -> a - b
        | 4 (* IMUL *) -> a * b
        | 5 (* IDIV *) -> Index.floordiv a b
        | 6 (* IMOD *) -> Index.floormod a b
        | 7 (* IMIN *) -> min a b
        | 8 (* IMAX *) -> max a b
        | _ -> invalid_arg "Compiled: corrupt int opcode"
      in
      Array.unsafe_set iregs (Array.unsafe_get code (base + 1)) v;
      pc := base + 4
  done

let exec_float code fpool iregs fregs (data : float array array) accv =
  let len = Array.length code in
  let pc = ref 0 in
  while !pc < len do
    let base = !pc in
    match Array.unsafe_get code base with
    | 0 (* FCONST *) ->
      Array.unsafe_set fregs
        (Array.unsafe_get code (base + 1))
        (Array.unsafe_get fpool (Array.unsafe_get code (base + 2)));
      pc := base + 3
    | 1 (* FLOAD *) ->
      let row = Array.unsafe_get data (Array.unsafe_get code (base + 2)) in
      Array.unsafe_set fregs
        (Array.unsafe_get code (base + 1))
        (Array.unsafe_get row
           (Array.unsafe_get iregs (Array.unsafe_get code (base + 3))));
      pc := base + 4
    | 2 (* FNEG *) ->
      Array.unsafe_set fregs
        (Array.unsafe_get code (base + 1))
        (-.Array.unsafe_get fregs (Array.unsafe_get code (base + 2)));
      pc := base + 3
    | 9 (* FACC *) ->
      Array.unsafe_set fregs (Array.unsafe_get code (base + 1)) accv;
      pc := base + 2
    | op ->
      let a = Array.unsafe_get fregs (Array.unsafe_get code (base + 2))
      and b = Array.unsafe_get fregs (Array.unsafe_get code (base + 3)) in
      let v =
        match op with
        | 3 (* FADD *) -> a +. b
        | 4 (* FSUB *) -> a -. b
        | 5 (* FMUL *) -> a *. b
        | 6 (* FDIV *) -> a /. b
        | 7 (* FMAX *) -> Float.max a b
        | 8 (* FMIN *) -> Float.min a b
        | _ -> invalid_arg "Compiled: corrupt float opcode"
      in
      Array.unsafe_set fregs (Array.unsafe_get code (base + 1)) v;
      pc := base + 4
  done

let check_inputs p inputs =
  Array.mapi
    (fun i name ->
      match List.assoc_opt name inputs with
      | None -> invalid_arg (Fmt.str "Compiled: missing input %s" name)
      | Some t ->
        if Tensor.shape t <> p.tshapes.(i) then
          invalid_arg
            (Fmt.str "Compiled: input %s has shape [%a], declared [%a]" name
               Fmt.(list ~sep:(any ";") int)
               (Tensor.shape t)
               Fmt.(list ~sep:(any ";") int)
               p.tshapes.(i));
        Tensor.unsafe_data t)
    p.tensors

let run_compiled p inputs =
  Trace.with_span ~name:"exec.compiled.run" @@ fun () ->
  Trace.Counter.incr c_runs;
  let { n; m; _ } = p in
  let data = check_inputs p inputs in
  let out = Tensor.create (Compute.output_shape p.compute) in
  let coverage = Tensor.create (Compute.output_shape p.compute) in
  let out_data = Tensor.unsafe_data out in
  let cov_data = Tensor.unsafe_data coverage in
  let vars = Array.make (n + m) 0 in
  let iregs = Array.make (max 1 p.n_iregs) 0 in
  let fregs = Array.make (max 1 p.n_fregs) 0.0 in
  (* One contiguous run of the innermost reduce variable.  The kernel
     dispatch and every site/tensor lookup are hoisted out of the hot
     path by specialising the stripe closure once per run. *)
  let inner_var = n + m - 1 in
  let run_stripe : int -> int -> float ref -> unit =
    match (p.deltas, p.kernel) with
    | Some d, Mac (sa, sb) ->
      let ta = data.(p.site_tensor.(sa)) and tb = data.(p.site_tensor.(sb)) in
      let da = d.(sa) and db = d.(sb) in
      fun start len acc ->
        vars.(inner_var) <- start;
        exec_int p.body_idx vars iregs;
        let oa = ref iregs.(sa) and ob = ref iregs.(sb) in
        let s = ref !acc in
        for _ = 1 to len do
          s := !s +. (Array.unsafe_get ta !oa *. Array.unsafe_get tb !ob);
          oa := !oa + da;
          ob := !ob + db
        done;
        acc := !s
    | Some d, Fold sa ->
      let ta = data.(p.site_tensor.(sa)) in
      let dk = d.(sa) in
      let sum = p.sum in
      fun start len acc ->
        vars.(inner_var) <- start;
        exec_int p.body_idx vars iregs;
        let o = ref iregs.(sa) in
        let s = ref !acc in
        if sum then
          for _ = 1 to len do
            s := !s +. Array.unsafe_get ta !o;
            o := !o + dk
          done
        else
          for _ = 1 to len do
            s := Float.max !s (Array.unsafe_get ta !o);
            o := !o + dk
          done;
        acc := !s
    | Some d, Generic ->
      let n_body_sites = Array.length d in
      fun start len acc ->
        vars.(inner_var) <- start;
        exec_int p.body_idx vars iregs;
        for _ = 1 to len do
          exec_float p.body_code p.fpool iregs fregs data 0.0;
          (acc :=
             if p.sum then !acc +. fregs.(0) else Float.max !acc fregs.(0));
          for s = 0 to n_body_sites - 1 do
            iregs.(s) <- iregs.(s) + Array.unsafe_get d s
          done
        done
    | None, _ ->
      (* Some body site is non-affine: re-derive every offset per element. *)
      fun start len acc ->
        for step = 0 to len - 1 do
          vars.(inner_var) <- start + step;
          exec_int p.body_idx vars iregs;
          exec_float p.body_code p.fpool iregs fregs data 0.0;
          acc := if p.sum then !acc +. fregs.(0) else Float.max !acc fregs.(0)
        done
  in
  (* Reduction.  The interpreter's chunked loops (level-1 chunks, level-0
     sub-chunks) visit every reduce variable in strictly ascending,
     contiguous order and accumulate sequentially — the chunk structure is
     kernel-shaped bookkeeping with no numeric effect.  The compiled tier
     therefore folds each reduce dimension into one flat loop and hands
     the innermost dimension to the stripe kernel as a single full-extent
     run: bit-identical results, and the per-stripe offset program
     amortises over the whole extent instead of one level-0 chunk. *)
  let rec reduce_dim j acc =
    if j = m - 1 then run_stripe 0 p.rext.(j) acc
    else
      for r = 0 to p.rext.(j) - 1 do
        vars.(n + j) <- r;
        reduce_dim (j + 1) acc
      done
  in
  (* One output element: reduce, scale, epilogue, store. *)
  let rdomain = Array.fold_left ( * ) 1 p.rext in
  let points = ref 0 in
  let visit () =
    points := !points + rdomain;
    let acc = ref p.init in
    if m = 0 then begin
      exec_int p.body_idx vars iregs;
      exec_float p.body_code p.fpool iregs fregs data 0.0;
      acc := if p.sum then !acc +. fregs.(0) else Float.max !acc fregs.(0)
    end
    else reduce_dim 0 acc;
    let v = !acc *. p.scale in
    let v =
      match p.epi_code with
      | None -> v
      | Some code ->
        exec_int p.epi_idx vars iregs;
        exec_float code p.fpool iregs fregs data v;
        fregs.(0)
    in
    let off = ref 0 in
    for i = 0 to n - 1 do
      off := !off + (vars.(i) * p.out_strides.(i))
    done;
    Array.unsafe_set out_data !off v;
    Array.unsafe_set cov_data !off (Array.unsafe_get cov_data !off +. 1.0)
  in
  (* Spatial nest, mirroring the interpreter: blocks over the grid,
     logical units over the block, stripe elements within a unit. *)
  let origin = Array.make n 0 in
  let block_start = Array.make n 0 in
  let rec stripe_dim i =
    if i = n then visit ()
    else begin
      let block_end = min (block_start.(i) + p.bsize.(i)) p.sext.(i) in
      for e = 0 to p.stripe.(i) - 1 do
        let coord = origin.(i) + e in
        if coord < block_end then begin
          vars.(i) <- coord;
          stripe_dim (i + 1)
        end
      done
    end
  in
  let rec unit_dim i =
    if i = n then stripe_dim 0
    else
      for u = 0 to p.units.(i) - 1 do
        origin.(i) <- block_start.(i) + (u * p.stripe.(i));
        unit_dim (i + 1)
      done
  in
  let rec block_dim i =
    if i = n then unit_dim 0
    else begin
      let b = ref 0 in
      while !b < p.sext.(i) do
        block_start.(i) <- !b;
        block_dim (i + 1);
        b := !b + p.bsize.(i)
      done
    end
  in
  block_dim 0;
  Trace.Counter.add c_points !points;
  Trace.Counter.add c_elements (Compute.output_points p.compute);
  { Scheduled.output = out; coverage }

let run etir inputs = run_compiled (compile etir) inputs

let pp ppf p =
  let kernel_name =
    match p.kernel with
    | Mac _ -> "mac"
    | Fold _ -> "fold"
    | Generic -> "generic"
  in
  Fmt.pf ppf
    "compiled{%s: %d sites, body %d+%d words, epi %s, %s stripe kernel, \
     %d iregs, %d fregs%s}"
    (Compute.name p.compute) p.n_sites
    (Array.length p.body_idx)
    (Array.length p.body_code)
    (match p.epi_code with
    | None -> "none"
    | Some c -> string_of_int (Array.length c) ^ " words")
    kernel_name p.n_iregs p.n_fregs
    (if p.deltas = None then "" else ", incremental offsets")
