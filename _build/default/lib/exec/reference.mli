(** Reference interpreter for compute definitions — the semantic ground
    truth schedules are validated against. *)

(** [run compute inputs] executes the definition directly over its iteration
    domain.  Raises [Invalid_argument] on missing inputs or shape
    mismatches. *)
val run : Tensor_lang.Compute.t -> (string * Tensor.t) list -> Tensor.t

(** Deterministic random inputs matching the declared input shapes. *)
val random_inputs :
  ?seed:int -> Tensor_lang.Compute.t -> (string * Tensor.t) list
