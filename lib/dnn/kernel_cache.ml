(* Dynamic optimizing system — the paper's ongoing-work direction made
   concrete: a kernel cache that serves dynamic-shape inference.

   On a lookup the cache
   - returns the exact kernel when the shape was seen before (hit);
   - otherwise warm-starts Gensor from the structurally nearest cached
     schedule (warm miss: a quarter-budget refinement), falling back to a
     full cold construction when no compatible schedule exists (cold miss).

   The cache is two-tier: L1 is this in-memory table, L2 an optional
   persistent {!Artifact.Store}.  At [create] every store entry tuned for
   the same device is preloaded into L1 — so a second process starts with
   exact hits and warm starts instead of cold constructions — and every
   construction is written through, making its cost a one-time expense per
   (device, operator, shape) rather than per process.

   This turns per-shape optimisation cost from "seconds per new shape" into
   "seconds once per operator family", which is what real-time
   re-optimisation of dynamic networks needs. *)

open Tensor_lang

type entry = {
  compute : Compute.t;
  etir : Sched.Etir.t;
  metrics : Costmodel.Metrics.t;
  cert : Verify.Cert.t option;
}

type lookup = Hit | Cert_hit | Warm_miss | Cold_miss

type stats = {
  hits : int;
  cert_hits : int;
  cert_rejects : int;
  warm_misses : int;
  cold_misses : int;
  construction_steps : int;
  store_hits : int;
  store_writes : int;
}

(* Internal mutable counters; {!stats} snapshots them. *)
type counters = {
  mutable c_hits : int;
  mutable c_cert_hits : int;
  mutable c_cert_rejects : int;
  mutable c_warm_misses : int;
  mutable c_cold_misses : int;
  mutable c_construction_steps : int;
  mutable c_store_hits : int;
  mutable c_store_writes : int;
}

(* Store identity of schedules this cache produces. *)
let method_name = "gensor"

(* Process-wide mirrors of the per-instance counters in the unified
   registry (Trace.Counter): traces and bench arms read kernel-cache
   behaviour from the same place as every other layer. *)
let c_hits = Trace.Counter.make "kcache.hits"
let c_warm_misses = Trace.Counter.make "kcache.warm_misses"
let c_cold_misses = Trace.Counter.make "kcache.cold_misses"
let c_store_hits = Trace.Counter.make "kcache.store_hits"
let c_store_writes = Trace.Counter.make "kcache.store_writes"

(* Certificate-gated dispatch outcomes.  These live in the [verify.*]
   namespace: they measure the legality certificates doing their job at the
   cache boundary, not cache mechanics. *)
let c_cert_hits = Trace.Counter.make "verify.cert.hit"
let c_cert_rejects = Trace.Counter.make "verify.cert.reject"

type t = {
  hw : Hardware.Gpu_spec.t;
  config : Gensor.Optimizer.config;
  certify : bool;
  entries : (string, entry) Hashtbl.t;            (* exact shape key *)
  families : (string, entry list ref) Hashtbl.t;  (* structural key *)
  counters : counters;
  store : Artifact.Store.t option;
  device_fp : string;
  preloaded : (string, unit) Hashtbl.t;  (* shape keys that came from L2 *)
}

(* Structured keys.  The operator name travels OCaml-quoted ([%S]), so a
   name containing the joiner characters ('|', 'x', ',', '~') cannot
   collide with the structural part; axis markers carry the kind, so a
   spatial "k" and a reduce "k" stay distinct. *)

(* Fused-tail marker: composite names alone cannot distinguish two fusions
   of the same ops with different tail expressions, so keys of computes
   carrying an epilogue append its extent-free structural hash (stable
   across a shape family, so warm starts still group fused kernels). *)
let epilogue_marker compute =
  match Compute.epilogue_fingerprint compute with
  | None -> ""
  | Some fp -> Fmt.str " ep:%016Lx" fp

(* Exact key: quoted name plus every axis as kind-marker + extent. *)
let shape_key compute =
  Fmt.str "%s %s%s"
    (Printf.sprintf "%S" (Compute.name compute))
    (String.concat "x"
       (List.map
          (fun ax ->
            Fmt.str "%s%d"
              (if Axis.is_reduce ax then "r" else "s")
              (Axis.extent ax))
          (Compute.axes compute)))
    (epilogue_marker compute)

(* Family key: quoted name plus the axis *structure* (quoted names and
   kinds), ignoring extents — schedules retarget within a family. *)
let family_key compute =
  Fmt.str "%s %s%s"
    (Printf.sprintf "%S" (Compute.name compute))
    (String.concat ","
       (List.map
          (fun ax ->
            Fmt.str "%s%s"
              (Printf.sprintf "%S" (Axis.name ax))
              (if Axis.is_reduce ax then "~" else ""))
          (Compute.axes compute)))
    (epilogue_marker compute)

let family_of t fkey =
  match Hashtbl.find_opt t.families fkey with
  | Some family -> family
  | None ->
    let family = ref [] in
    Hashtbl.add t.families fkey family;
    family

let remember t entry =
  let key = shape_key entry.compute in
  Hashtbl.replace t.entries key entry;
  let family = family_of t (family_key entry.compute) in
  family := entry :: !family;
  key

(* L2 -> L1: adopt every store entry tuned by this method for this device.
   Entries for other devices or methods are left alone. *)
let preload t store =
  List.iter
    (fun (_, (r : Artifact.Record.t)) ->
      if
        String.equal r.device_fingerprint t.device_fp
        && String.equal r.method_name method_name
      then begin
        let key =
          remember t
            { compute = r.compute; etir = r.etir; metrics = r.metrics;
              cert = r.cert }
        in
        Hashtbl.replace t.preloaded key ()
      end)
    (Artifact.Store.entries store)

let create ?(config = Gensor.Optimizer.default_config) ?(certify = false)
    ?store ~hw () =
  let t =
    { hw; config; certify;
      entries = Hashtbl.create 64; families = Hashtbl.create 16;
      counters =
        { c_hits = 0; c_cert_hits = 0; c_cert_rejects = 0;
          c_warm_misses = 0; c_cold_misses = 0;
          c_construction_steps = 0; c_store_hits = 0; c_store_writes = 0 };
      store; device_fp = Artifact.Gpu_codec.fingerprint hw;
      preloaded = Hashtbl.create 16 }
  in
  Option.iter (preload t) store;
  t

(* Nearest family member by log-space distance over the axis extents. *)
let nearest_in_family family compute =
  let extents c = List.map Axis.extent (Compute.axes c) in
  let target = extents compute in
  let distance candidate =
    List.fold_left2
      (fun acc a b ->
        acc
        +. Float.abs (Float.log2 (float_of_int a) -. Float.log2 (float_of_int b)))
      0.0 target
      (extents candidate.compute)
  in
  match family with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best candidate ->
           if distance candidate < distance best then candidate else best)
         first rest)

let write_through t entry ~steps =
  match t.store with
  | None -> ()
  | Some store ->
    let r =
      Artifact.Record.v ~method_name ~seed:t.config.Gensor.Optimizer.seed
        ~steps ?cert:entry.cert ~device:t.hw ~etir:entry.etir
        ~metrics:entry.metrics ()
    in
    ignore (Artifact.Store.put store r : string);
    t.counters.c_store_writes <- t.counters.c_store_writes + 1;
    Trace.Counter.incr c_store_writes

let compile t compute =
  Trace.with_span ~name:"kcache.compile"
    ~args:[ ("shape", shape_key compute) ]
  @@ fun () ->
  let key = shape_key compute in
  match Hashtbl.find_opt t.entries key with
  | Some entry ->
    t.counters.c_hits <- t.counters.c_hits + 1;
    Trace.Counter.incr c_hits;
    if Hashtbl.mem t.preloaded key then begin
      t.counters.c_store_hits <- t.counters.c_store_hits + 1;
      Trace.Counter.incr c_store_hits
    end;
    (entry, Hit)
  | None ->
    let warm = nearest_in_family !(family_of t (family_key compute)) compute in
    let result =
      match warm with
      | Some seed ->
        Gensor.Optimizer.optimize ~config:t.config ~warm_start:seed.etir
          ~hw:t.hw compute
      | None -> Gensor.Optimizer.optimize ~config:t.config ~hw:t.hw compute
    in
    (match warm with
    | Some _ ->
      t.counters.c_warm_misses <- t.counters.c_warm_misses + 1;
      Trace.Counter.incr c_warm_misses
    | None ->
      t.counters.c_cold_misses <- t.counters.c_cold_misses + 1;
      Trace.Counter.incr c_cold_misses);
    t.counters.c_construction_steps <-
      t.counters.c_construction_steps + result.Gensor.Optimizer.states_explored;
    let cert =
      if t.certify then
        let outcome =
          Verify.Cert.certify ~hw:t.hw result.Gensor.Optimizer.etir
        in
        outcome.Verify.Cert.cert
      else None
    in
    let entry =
      { compute; etir = result.Gensor.Optimizer.etir;
        metrics = result.Gensor.Optimizer.metrics; cert }
    in
    ignore (remember t entry : string);
    write_through t entry ~steps:result.Gensor.Optimizer.states_explored;
    (entry, if warm = None then Cold_miss else Warm_miss)

(* Certificate-gated dispatch: an unseen shape may be served by a family
   member whose legality certificate admits it — the cached schedule is
   retargeted and re-scored, with no construction at all.  A shape outside
   every certified region is *refused* (the reject counter records the
   refusal) and falls back to [compile]: a cached kernel is never
   dispatched beyond the region it was proved legal on. *)
let dispatch t compute =
  Trace.with_span ~name:"kcache.dispatch"
    ~args:[ ("shape", shape_key compute) ]
  @@ fun () ->
  if Hashtbl.mem t.entries (shape_key compute) then compile t compute
  else begin
    let family = !(family_of t (family_key compute)) in
    let certified = List.filter (fun e -> e.cert <> None) family in
    let admitted =
      List.find_opt
        (fun e ->
          match e.cert with
          | Some c -> Result.is_ok (Verify.Cert.admits_compute c compute)
          | None -> false)
        certified
    in
    match admitted with
    | Some donor ->
      let etir = Sched.Etir.retarget donor.etir compute in
      let metrics = Costmodel.Model.evaluate_cached ~hw:t.hw etir in
      t.counters.c_cert_hits <- t.counters.c_cert_hits + 1;
      Trace.Counter.incr c_cert_hits;
      let entry = { compute; etir; metrics; cert = donor.cert } in
      ignore (remember t entry : string);
      (entry, Cert_hit)
    | None ->
      if certified <> [] then begin
        t.counters.c_cert_rejects <- t.counters.c_cert_rejects + 1;
        Trace.Counter.incr c_cert_rejects
      end;
      compile t compute
  end

let stats t =
  let c = t.counters in
  { hits = c.c_hits; cert_hits = c.c_cert_hits;
    cert_rejects = c.c_cert_rejects; warm_misses = c.c_warm_misses;
    cold_misses = c.c_cold_misses;
    construction_steps = c.c_construction_steps;
    store_hits = c.c_store_hits; store_writes = c.c_store_writes }

let size t = Hashtbl.length t.entries
let preloaded_count t = Hashtbl.length t.preloaded
