(* Integer index expressions over loop variables.

   These appear as the coordinates of tensor accesses, e.g. the input access
   of a strided convolution reads [I[n][c][s*x + i][s*y + j]].  The smart
   constructors fold constants so that interval analysis and evaluation stay
   cheap on deeply nested expressions. *)

type t =
  | Var of string
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (* floor division, divisor must evaluate > 0 *)
  | Mod of t * t  (* remainder, divisor must evaluate > 0 *)
  | Min of t * t
  | Max of t * t

let var name = Var name
let const n = Const n

let add a b =
  match (a, b) with
  | Const 0, x | x, Const 0 -> x
  | Const m, Const n -> Const (m + n)
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | x, Const 0 -> x
  | Const m, Const n -> Const (m - n)
  | _ -> Sub (a, b)

let mul a b =
  match (a, b) with
  | Const 0, _ | _, Const 0 -> Const 0
  | Const 1, x | x, Const 1 -> x
  | Const m, Const n -> Const (m * n)
  | _ -> Mul (a, b)

let div a b =
  match (a, b) with
  | x, Const 1 -> x
  | Const m, Const n when n > 0 ->
    (* floor division on possibly negative numerators *)
    let q = if m >= 0 then m / n else -(((-m) + n - 1) / n) in
    Const q
  | _ -> Div (a, b)

let rem a b =
  match (a, b) with
  | _, Const 1 -> Const 0
  | Const m, Const n when n > 0 -> Const (((m mod n) + n) mod n)
  | _ -> Mod (a, b)

let min_ a b =
  match (a, b) with Const m, Const n -> Const (min m n) | _ -> Min (a, b)

let max_ a b =
  match (a, b) with Const m, Const n -> Const (max m n) | _ -> Max (a, b)

let floordiv m n = if m >= 0 then m / n else -(((-m) + n - 1) / n)
let floormod m n = ((m mod n) + n) mod n

let rec eval ~env t =
  match t with
  | Var name -> env name
  | Const n -> n
  | Add (a, b) -> eval ~env a + eval ~env b
  | Sub (a, b) -> eval ~env a - eval ~env b
  | Mul (a, b) -> eval ~env a * eval ~env b
  | Div (a, b) ->
    let d = eval ~env b in
    if d <= 0 then invalid_arg "Index.eval: division by non-positive value";
    floordiv (eval ~env a) d
  | Mod (a, b) ->
    let d = eval ~env b in
    if d <= 0 then invalid_arg "Index.eval: modulo by non-positive value";
    floormod (eval ~env a) d
  | Min (a, b) -> min (eval ~env a) (eval ~env b)
  | Max (a, b) -> max (eval ~env a) (eval ~env b)

let rec fold_vars f acc t =
  match t with
  | Var name -> f acc name
  | Const _ -> acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Min (a, b) | Max (a, b) ->
    fold_vars f (fold_vars f acc a) b

let vars t =
  let add_unique acc name = if List.mem name acc then acc else name :: acc in
  List.rev (fold_vars add_unique [] t)

let rec subst ~bindings t =
  match t with
  | Var name -> (
    match List.assoc_opt name bindings with Some e -> e | None -> t)
  | Const _ -> t
  | Add (a, b) -> add (subst ~bindings a) (subst ~bindings b)
  | Sub (a, b) -> sub (subst ~bindings a) (subst ~bindings b)
  | Mul (a, b) -> mul (subst ~bindings a) (subst ~bindings b)
  | Div (a, b) -> div (subst ~bindings a) (subst ~bindings b)
  | Mod (a, b) -> rem (subst ~bindings a) (subst ~bindings b)
  | Min (a, b) -> min_ (subst ~bindings a) (subst ~bindings b)
  | Max (a, b) -> max_ (subst ~bindings a) (subst ~bindings b)

let rec pp ppf t =
  match t with
  | Var name -> Fmt.string ppf name
  | Const n -> Fmt.int ppf n
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b
  | Mod (a, b) -> Fmt.pf ppf "(%a %% %a)" pp a pp b
  | Min (a, b) -> Fmt.pf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Fmt.pf ppf "max(%a, %a)" pp a pp b

let to_string t = Fmt.str "%a" pp t
