(* Diagnostics of the schedule legality verifier.

   Every finding carries the pass that produced it, a human-readable location
   (axis, kernel line, tensor) precise enough to act on, and a severity:
   [Error] marks a schedule or kernel that must not ship (out-of-bounds
   access, data race, emitted text contradicting the schedule), [Warning]
   marks legality debts a guard would repay (non-dividing tiles), [Info] is
   advisory. *)

type severity = Error | Warning | Info
type pass = Bounds | Race | Lint

type t = {
  severity : severity;
  pass : pass;
  loc : string;
  message : string;
}

let v severity pass ~loc fmt =
  Fmt.kstr (fun message -> { severity; pass; loc; message }) fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pass_to_string = function
  | Bounds -> "bounds"
  | Race -> "race"
  | Lint -> "lint"

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds

let count severity ds = List.length (List.filter (fun d -> d.severity = severity) ds)

(* Errors first, then warnings, then infos; stable within a severity. *)
let by_severity ds =
  let rank = function Error -> 0 | Warning -> 1 | Info -> 2 in
  List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) ds

let pp ppf d =
  Fmt.pf ppf "[%s/%s] %s: %s"
    (pass_to_string d.pass)
    (severity_to_string d.severity)
    d.loc d.message

let pp_report ppf ds =
  if ds = [] then Fmt.pf ppf "clean (no diagnostics)"
  else begin
    Fmt.pf ppf "@[<v>%d error(s), %d warning(s), %d info(s)" (count Error ds)
      (count Warning ds) (count Info ds);
    List.iter (fun d -> Fmt.pf ppf "@,%a" pp d) (by_severity ds);
    Fmt.pf ppf "@]"
  end
