open Sched

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---------- Tensor ---------- *)

let test_tensor_basics () =
  let t = Exec.Tensor.create [ 2; 3 ] in
  Exec.Tensor.set t [ 1; 2 ] 5.0;
  check_float "set/get" 5.0 (Exec.Tensor.get t [ 1; 2 ]);
  check_float "zero elsewhere" 0.0 (Exec.Tensor.get t [ 0; 0 ]);
  check_int "size" 6 (Exec.Tensor.size t);
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Tensor.offset: rank mismatch") (fun () ->
      ignore (Exec.Tensor.get t [ 1 ]));
  (try
     ignore (Exec.Tensor.get t [ 2; 0 ]);
     Alcotest.fail "out of bounds accepted"
   with Invalid_argument _ -> ())

let test_tensor_init () =
  let t = Exec.Tensor.init [ 3; 4 ] (fun coords ->
      match coords with [ i; j ] -> float_of_int ((i * 10) + j) | _ -> nan)
  in
  check_float "row-major init" 23.0 (Exec.Tensor.get t [ 2; 3 ]);
  check_float "origin" 0.0 (Exec.Tensor.get t [ 0; 0 ])

let test_tensor_pad () =
  let t = Exec.Tensor.init [ 1; 1; 2; 2 ] (fun _ -> 1.0) in
  let p = Exec.Tensor.pad_hw t ~pad:1 in
  Alcotest.(check (list int)) "padded shape" [ 1; 1; 4; 4 ] (Exec.Tensor.shape p);
  check_float "border zero" 0.0 (Exec.Tensor.get p [ 0; 0; 0; 0 ]);
  check_float "interior preserved" 1.0 (Exec.Tensor.get p [ 0; 0; 1; 1 ])

(* ---------- Reference ---------- *)

let test_reference_gemm () =
  let op = Ops.Matmul.gemm ~m:2 ~n:2 ~k:2 () in
  let compute = Ops.Op.compute op in
  let a = Exec.Tensor.init [ 2; 2 ] (fun c ->
      match c with [ i; k ] -> float_of_int ((i * 2) + k + 1) | _ -> nan)
  in
  let b = Exec.Tensor.init [ 2; 2 ] (fun c ->
      match c with [ k; j ] -> float_of_int ((k * 2) + j + 5) | _ -> nan)
  in
  let out = Exec.Reference.run compute [ ("A", a); ("B", b) ] in
  (* [[1 2];[3 4]] x [[5 6];[7 8]] = [[19 22];[43 50]] *)
  check_float "c00" 19.0 (Exec.Tensor.get out [ 0; 0 ]);
  check_float "c01" 22.0 (Exec.Tensor.get out [ 0; 1 ]);
  check_float "c10" 43.0 (Exec.Tensor.get out [ 1; 0 ]);
  check_float "c11" 50.0 (Exec.Tensor.get out [ 1; 1 ])

let test_reference_avgpool_scale () =
  let op =
    Ops.Pool.avgpool2d ~batch:1 ~channels:1 ~height:2 ~width:2 ~window:2
      ~stride:2 ()
  in
  let inputs =
    [ ("I", Exec.Tensor.init [ 1; 1; 2; 2 ] (fun c ->
          match c with [ _; _; y; x ] -> float_of_int ((y * 2) + x) | _ -> nan))
    ]
  in
  let out = Exec.Reference.run (Ops.Op.compute op) inputs in
  check_float "mean of 0..3" 1.5 (Exec.Tensor.get out [ 0; 0; 0; 0 ])

let test_reference_maxpool () =
  let op =
    Ops.Pool.maxpool2d ~batch:1 ~channels:1 ~height:2 ~width:2 ~window:2
      ~stride:2 ()
  in
  let inputs =
    [ ("I", Exec.Tensor.init [ 1; 1; 2; 2 ] (fun c ->
          match c with [ _; _; y; x ] -> float_of_int ((y * 2) + x) | _ -> nan))
    ]
  in
  let out = Exec.Reference.run (Ops.Op.compute op) inputs in
  check_float "max of 0..3" 3.0 (Exec.Tensor.get out [ 0; 0; 0; 0 ])

let test_reference_missing_input () =
  let compute = Ops.Op.compute (Ops.Matmul.gemv ~m:2 ~n:2 ()) in
  Alcotest.check_raises "missing input"
    (Invalid_argument "Reference: missing input A") (fun () ->
      ignore (Exec.Reference.run compute []))

(* ---------- Scheduled vs reference ---------- *)

let small_ops =
  [ ("gemm 13x9x11", fun () -> Ops.Matmul.gemm ~m:13 ~n:9 ~k:11 ());
    ("gemv 23x17", fun () -> Ops.Matmul.gemv ~m:23 ~n:17 ());
    ("bmm 3x6x5x4", fun () -> Ops.Matmul.batch_matmul ~batch:3 ~m:6 ~n:5 ~k:4 ());
    ("conv 2ch 7x7 s2",
     fun () ->
       Ops.Conv.conv2d ~batch:2 ~in_channels:2 ~out_channels:3 ~height:7
         ~width:7 ~kernel:3 ~stride:2 ());
    ("dwconv 3ch s1",
     fun () ->
       Ops.Conv.depthwise_conv2d ~batch:1 ~channels:3 ~height:6 ~width:6
         ~kernel:3 ~stride:1 ());
    ("avgpool", fun () ->
       Ops.Pool.avgpool2d ~batch:2 ~channels:3 ~height:6 ~width:6 ~window:2
         ~stride:2 ());
    ("maxpool", fun () ->
       Ops.Pool.maxpool2d ~batch:1 ~channels:2 ~height:9 ~width:9 ~window:3
         ~stride:3 ());
    ("relu", fun () -> Ops.Elementwise.relu ~shape:[ 3; 4; 5 ] ());
    ("bias_add", fun () -> Ops.Elementwise.bias_add ~shape:[ 2; 6; 3 ] ()) ]

(* A random ETIR for a compute definition, via a random legal-action walk. *)
let random_schedule rng compute ~steps =
  let e = ref (Etir.create compute) in
  for _ = 1 to steps do
    match Action.successors !e with
    | [] -> ()
    | succs -> e := snd (Rng.choice rng succs)
  done;
  !e

let test_scheduled_matches_reference () =
  let rng = Rng.create ~seed:99 in
  List.iter
    (fun (name, make_op) ->
      let compute = Ops.Op.compute (make_op ()) in
      let inputs = Exec.Reference.random_inputs compute in
      let expected = Exec.Reference.run compute inputs in
      for _ = 1 to 3 do
        let etir = random_schedule rng compute ~steps:25 in
        let result = Exec.Scheduled.run etir inputs in
        if not (Exec.Scheduled.coverage_exact result) then
          Alcotest.failf "%s: coverage not exact for %s" name
            (Etir.signature etir);
        let diff = Exec.Tensor.max_abs_diff expected result.Exec.Scheduled.output in
        if diff > 1e-3 then
          Alcotest.failf "%s: schedule diverges (%.2e) for %s" name diff
            (Etir.signature etir)
      done)
    small_ops

let prop_random_schedules_correct =
  QCheck.Test.make ~count:60 ~name:"random gemm schedules preserve semantics"
    QCheck.(make Gen.(pair (int_range 0 10_000) (int_range 0 50)))
    (fun (seed, steps) ->
      let rng = Rng.create ~seed in
      let compute = Ops.Op.compute (Ops.Matmul.gemm ~m:17 ~n:13 ~k:19 ()) in
      let inputs = Exec.Reference.random_inputs ~seed compute in
      let expected = Exec.Reference.run compute inputs in
      let etir = random_schedule rng compute ~steps in
      let result = Exec.Scheduled.run etir inputs in
      Exec.Scheduled.coverage_exact result
      && Exec.Tensor.max_abs_diff expected result.Exec.Scheduled.output < 1e-3)

let prop_vthread_preserves_semantics =
  QCheck.Test.make ~count:60 ~name:"vthread stripes preserve semantics"
    QCheck.(make Gen.(triple (int_range 1 8) (int_range 1 8) (int_range 0 100)))
    (fun (t0, v_raw, seed) ->
      let v = min v_raw t0 in
      let compute = Ops.Op.compute (Ops.Matmul.gemm ~m:29 ~n:23 ~k:7 ()) in
      let inputs = Exec.Reference.random_inputs ~seed compute in
      let expected = Exec.Reference.run compute inputs in
      let e = Etir.create compute in
      let e = Etir.with_stile e ~level:0 ~dim:0 t0 in
      let e = Etir.with_stile e ~level:1 ~dim:0 (min 29 (t0 * 2)) in
      let e = Etir.with_vthread e ~dim:0 v in
      let result = Exec.Scheduled.run e inputs in
      Exec.Scheduled.coverage_exact result
      && Exec.Tensor.max_abs_diff expected result.Exec.Scheduled.output < 1e-3)

let () =
  Alcotest.run "exec"
    [ ("tensor",
       [ Alcotest.test_case "basics" `Quick test_tensor_basics;
         Alcotest.test_case "init" `Quick test_tensor_init;
         Alcotest.test_case "padding" `Quick test_tensor_pad ]);
      ("reference",
       [ Alcotest.test_case "gemm 2x2" `Quick test_reference_gemm;
         Alcotest.test_case "avgpool scale" `Quick test_reference_avgpool_scale;
         Alcotest.test_case "maxpool combine" `Quick test_reference_maxpool;
         Alcotest.test_case "missing input" `Quick test_reference_missing_input
       ]);
      ("scheduled",
       [ Alcotest.test_case "matches reference on all op classes" `Slow
           test_scheduled_matches_reference;
         QCheck_alcotest.to_alcotest prop_random_schedules_correct;
         QCheck_alcotest.to_alcotest prop_vthread_preserves_semantics ]) ]
