(* Text codec for {!Verify.Cert.t} — the shape-region legality certificate
   an artifact can carry next to its schedule.

   Affine forms travel as [<const> <nterms> (<coeff> <name>)*]; symbol
   names are quoted (axis names are free text), codes and numbers are
   atoms.  Decoding rebuilds canonical forms through the {!Cert.Affine}
   constructors, so a round-tripped certificate is structurally equal to
   the original. *)

open Verify
module Affine = Cert.Affine

let ( let* ) = Result.bind

let encode_affine a =
  let syms = Affine.syms a in
  Fmt.str "%d %d%s" (Affine.offset a) (List.length syms)
    (String.concat ""
       (List.map
          (fun s -> Fmt.str " %d %s" (Affine.coeff a s) (Codec.quote s))
          syms))

let rec decode_terms ~line toks n acc =
  if n <= 0 then Ok (acc, toks)
  else
    let* coeff, toks = Codec.take_int ~line toks in
    let* name, toks = Codec.take_str ~line toks in
    decode_terms ~line toks (n - 1)
      (Affine.add acc (Affine.sym ~coeff name))

let decode_affine ~line toks =
  let* const, toks = Codec.take_int ~line toks in
  let* n, toks = Codec.take_int ~line toks in
  let* () =
    if n >= 0 && n <= 1_000 then Ok ()
    else Codec.error line "implausible term count %d" n
  in
  decode_terms ~line toks n (Affine.const const)

let rec times n f acc =
  if n <= 0 then Ok (List.rev acc)
  else
    let* x = f () in
    times (n - 1) f (x :: acc)

let counted cur key decode_one =
  let start = Codec.lineno cur in
  let* n = Codec.field_int cur key in
  let* () =
    if n >= 0 && n <= 10_000 then Ok ()
    else Codec.error start "implausible %s count %d" key n
  in
  times n (fun () -> decode_one cur) []

let encode (c : Cert.t) =
  [ Fmt.str "cert_device %s" (Codec.quote c.Cert.device);
    Fmt.str "cert_sig %s" (Codec.quote c.Cert.witness_sig);
    Fmt.str "cert_syms %d" (List.length c.Cert.syms) ]
  @ List.map
      (fun (s, r) ->
        Fmt.str "sym %s %d %d" (Codec.quote s) (Tensor_lang.Interval.lo r)
          (Tensor_lang.Interval.hi r))
      c.Cert.syms
  @ [ Fmt.str "cert_constraints %d" (List.length c.Cert.constraints) ]
  @ List.map
      (fun (k : Cert.constr) ->
        Fmt.str "constr %s %s" (encode_affine k.Cert.lhs)
          (encode_affine k.Cert.rhs))
      c.Cert.constraints
  @ [ Fmt.str "cert_guards %d" (List.length c.Cert.guards) ]
  @ List.map
      (fun (g : Cert.guard) ->
        Fmt.str "guard %d %s" g.Cert.divisor (Codec.quote g.Cert.g_sym))
      c.Cert.guards
  @ [ Fmt.str "cert_witness %d" (List.length c.Cert.witness) ]
  @ List.map
      (fun (n, e) -> Fmt.str "wit %s %d" (Codec.quote n) e)
      c.Cert.witness

let decode cur =
  let* device = Codec.field_str cur "cert_device" in
  let* witness_sig = Codec.field_str cur "cert_sig" in
  let* syms =
    counted cur "cert_syms" (fun cur ->
        let* ln, toks = Codec.field cur "sym" in
        let* name, toks = Codec.take_str ~line:ln toks in
        let* lo, toks = Codec.take_int ~line:ln toks in
        let* hi, toks = Codec.take_int ~line:ln toks in
        let* () = Codec.finish ~line:ln toks in
        if lo > hi then Codec.error ln "empty range for symbol %s" name
        else Ok (name, Tensor_lang.Interval.v lo hi))
  in
  let* constraints =
    counted cur "cert_constraints" (fun cur ->
        let* ln, toks = Codec.field cur "constr" in
        let* lhs, toks = decode_affine ~line:ln toks in
        let* rhs, toks = decode_affine ~line:ln toks in
        let* () = Codec.finish ~line:ln toks in
        Ok { Cert.lhs; rhs })
  in
  let* guards =
    counted cur "cert_guards" (fun cur ->
        let* ln, toks = Codec.field cur "guard" in
        let* divisor, toks = Codec.take_int ~line:ln toks in
        let* g_sym, toks = Codec.take_str ~line:ln toks in
        let* () = Codec.finish ~line:ln toks in
        if divisor <= 0 then Codec.error ln "non-positive guard divisor"
        else Ok { Cert.divisor; g_sym })
  in
  let* witness =
    counted cur "cert_witness" (fun cur ->
        let* ln, toks = Codec.field cur "wit" in
        let* name, toks = Codec.take_str ~line:ln toks in
        let* extent, toks = Codec.take_int ~line:ln toks in
        let* () = Codec.finish ~line:ln toks in
        Ok (name, extent))
  in
  Ok { Cert.device; syms; constraints; guards; witness; witness_sig }
