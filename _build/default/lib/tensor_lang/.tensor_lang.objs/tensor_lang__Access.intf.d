lib/tensor_lang/access.mli: Fmt Index Interval
